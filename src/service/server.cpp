#include "service/server.hpp"

#include <algorithm>
#include <cctype>
#include <exception>

#include "driver/pipeline.hpp"
#include "minimpi/fault.hpp"
#include "service/hash.hpp"
#include "support/diag.hpp"
#include "support/governor.hpp"
#include "support/snapshot.hpp"
#include "vm/bcgen.hpp"

namespace otter::service {

/// Everything the execution tier needs to run a compiled artifact once.
/// Built by handle_script after admission; consumed either in-process or
/// inside a sandbox child.
struct RunSetup {
  int np = 1;
  std::string machine;
  driver::ExecOptions eo;
  std::string ckpt_dir;
  std::string test_kill;  // chaos hook, validated + gated by handle_script
};

namespace {

const char* severity_name(DiagSeverity sev) {
  switch (sev) {
    case DiagSeverity::Error: return "error";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Note: return "note";
  }
  return "error";
}

/// Compact JSON rendering of a compile's diagnostics. The service cannot
/// use DiagEngine::to_json here: that form is pretty-printed across several
/// lines, which would tear the newline-delimited response framing.
json::JValue diags_json(const DiagEngine& diags) {
  json::JArray out;
  for (const Diagnostic& d : diags.diagnostics()) {
    json::JValue e{json::JObject{}};
    e.set("code", d.code);
    e.set("severity", severity_name(d.severity));
    e.set("line", static_cast<double>(d.loc.line));
    e.set("col", static_cast<double>(d.loc.col));
    e.set("message", d.message);
    out.push_back(std::move(e));
  }
  return json::JValue(std::move(out));
}

/// First error code of a failed compile ("" when only uncoded errors).
std::string first_error_code(const DiagEngine& diags) {
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.severity == DiagSeverity::Error && !d.code.empty()) return d.code;
  }
  return "";
}

double seconds_until(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration<double>(deadline -
                                       std::chrono::steady_clock::now())
      .count();
}

bool looks_like_deadline(const mpi::SpmdFailure& f) {
  for (const mpi::RankFailure& rf : f.failures()) {
    if (rf.what.find("request deadline exceeded") != std::string::npos ||
        rf.what.find("run cancelled by the service") != std::string::npos) {
      return true;
    }
  }
  return false;
}

json::JValue rank_failures_json(const mpi::SpmdFailure& f) {
  json::JArray ranks;
  for (const mpi::RankFailure& rf : f.failures()) {
    json::JValue e{json::JObject{}};
    e.set("rank", rf.rank);
    e.set("primary", rf.primary);
    e.set("ops_completed", rf.ops_completed);
    e.set("what", rf.what);
    ranks.push_back(std::move(e));
  }
  return json::JValue(std::move(ranks));
}

/// Runs the artifact once and renders the outcome as an *undecorated*
/// partial response — status/code/message/output/failures/governor only.
/// The caller adds id/hash/cache/stats and drives counters + the breaker
/// off the status, which is what lets the sandboxed and in-process tiers
/// share one classification path (in sandbox mode this function runs in
/// the child, where counter state would be lost with the process).
/// Never throws: it is the per-request exception barrier, and in the child
/// an escaped exception would be an opaque protocol death instead of a
/// coded error.
json::JValue run_artifact(const driver::CompileResult& compiled,
                          const RunSetup& s) {
  json::JValue out{json::JObject{}};
  try {
    driver::ParallelRun run = driver::run_parallel(
        compiled.lir, mpi::profile_by_name(s.machine), s.np, s.eo);
    out.set("status", "ok");
    out.set("output", run.output);
    out.set("max_vtime", run.times.max_vtime());
    out.set("comm_ops", run.times.total_ops());
    if (!s.ckpt_dir.empty()) {
      json::JValue ck{json::JObject{}};
      ck.set("written", run.checkpoints_written);
      ck.set("resumed", run.resumed);
      ck.set("resumed_statement", run.resumed_statement);
      out.set("checkpoint", std::move(ck));
      if (!run.warnings.empty()) {
        json::JArray ws;
        for (const std::string& w : run.warnings)
          ws.push_back(json::JValue(w));
        out.set("warnings", json::JValue(std::move(ws)));
      }
    }
  } catch (const mpi::SpmdFailure& f) {
    if (looks_like_deadline(f)) {
      out.set("status", "deadline");
      out.set("code", "E0009");
      out.set("message",
              "request wall-clock deadline exceeded during execution");
    } else {
      // Surface the primary rank's diagnostic code (E5006 budget, E5003
      // shape guard, ...) instead of flattening everything to E5001.
      const std::string& rcode = f.first().code;
      out.set("status", "runtime_error");
      out.set("code", rcode.empty() ? "E5001" : rcode);
      out.set("message", f.what());
    }
    out.set("failures", rank_failures_json(f));
  } catch (const rt::RtError& e) {
    if (e.code == "E5004") {
      out.set("status", "deadline");
      out.set("code", "E0009");
    } else {
      out.set("status", "runtime_error");
      out.set("code", e.code.empty() ? "E5001" : e.code);
    }
    out.set("message", e.what());
  } catch (const std::bad_alloc& e) {
    // The executor's own barrier maps budget denials mid-run to a coded
    // RtError; this catches an allocation failing outside it.
    out.set("status", "runtime_error");
    out.set("code", "E5006");
    out.set("message", e.what());
  } catch (const std::exception& e) {
    out.set("status", "runtime_error");
    out.set("code", "E5001");
    out.set("message", e.what());
  }
  // The run's governor accounting rides back in the response; in sandbox
  // mode this is the child's ledger, i.e. exactly this request's usage.
  const gov::GovernorStats gs = gov::ResourceGovernor::instance().stats();
  json::JValue gj{json::JObject{}};
  gj.set("peak_bytes", gs.peak);
  gj.set("denials", gs.denials);
  gj.set("budget_bytes", s.eo.spmd.mem_budget_bytes);
  out.set("governor", std::move(gj));
  return out;
}

}  // namespace

Service::Service(ServiceConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_bytes), breaker_(cfg.breaker) {}

std::chrono::steady_clock::time_point Service::deadline_for(
    const json::JValue& req) const {
  double secs = req.get_number("deadline", cfg_.default_deadline);
  if (!(secs > 0)) secs = cfg_.default_deadline;
  secs = std::min(secs, cfg_.max_deadline);
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(secs));
}

std::string Service::overload_response(const std::string& line) {
  shed_.fetch_add(1);
  received_.fetch_add(1);
  json::JValue resp{json::JObject{}};
  // Echo the id when the shed line parses; a flood of garbage still gets a
  // well-formed E0008 back.
  if (auto req = json::parse(line)) {
    if (const json::JValue* id = req->get("id")) resp.set("id", *id);
  }
  resp.set("status", "shed");
  resp.set("code", "E0008");
  resp.set("message",
           "server overloaded: admission queue full, request shed");
  attach_stats(resp);
  return resp.dump();
}

std::string Service::process_line(
    const std::string& line, std::chrono::steady_clock::time_point deadline) {
  received_.fetch_add(1);
  if (line.size() > cfg_.max_request_bytes) {
    return error_response(nullptr, "bad_request", "E0012",
                          "request exceeds the service admission limits: "
                          "request line of " + std::to_string(line.size()) +
                          " bytes (limit " +
                          std::to_string(cfg_.max_request_bytes) + ")")
        .dump();
  }
  json::ParseError perr;
  std::optional<json::JValue> req = json::parse(line, &perr);
  if (!req || !req->is_object()) {
    std::string why = req ? "request must be a JSON object"
                          : perr.reason + " at byte " +
                                std::to_string(perr.offset);
    return error_response(nullptr, "bad_request", "E0011",
                          "malformed service request: " + why)
        .dump();
  }
  if (deadline == std::chrono::steady_clock::time_point{}) {
    deadline = deadline_for(*req);
  }
  return process(*req, deadline).dump();
}

json::JValue Service::process(const json::JValue& req,
                              std::chrono::steady_clock::time_point deadline) {
  // Top-level exception barrier: nothing a request does may take down the
  // service loop. Anything escaping handle_script is a service bug, reported
  // as internal_error rather than death.
  try {
    const std::string op = req.get_string("op", "compile_run");
    if (op == "ping") {
      json::JValue resp{json::JObject{}};
      if (const json::JValue* id = req.get("id")) resp.set("id", *id);
      resp.set("status", "ok");
      resp.set("pong", true);
      return resp;
    }
    if (op == "stats") {
      json::JValue resp{json::JObject{}};
      if (const json::JValue* id = req.get("id")) resp.set("id", *id);
      resp.set("status", "ok");
      attach_stats(resp);
      return resp;
    }
    if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_relaxed);
      json::JValue resp{json::JObject{}};
      if (const json::JValue* id = req.get("id")) resp.set("id", *id);
      resp.set("status", "ok");
      resp.set("shutting_down", true);
      return resp;
    }
    if (op != "compile_run") {
      return error_response(&req, "bad_request", "E0011",
                            "malformed service request: unknown op \"" + op +
                                "\"");
    }
    return handle_script(req, deadline);
  } catch (const std::bad_alloc& e) {
    // Allocation failure on the request path itself (outside the run
    // barrier): still a per-request coded error, never daemon death.
    runtime_errors_.fetch_add(1);
    return error_response(&req, "runtime_error", "E5006",
                          std::string("memory budget exceeded: ") + e.what());
  } catch (const std::exception& e) {
    return error_response(&req, "internal_error", "",
                          std::string("internal service error: ") + e.what());
  } catch (...) {
    return error_response(&req, "internal_error", "",
                          "internal service error: unknown exception");
  }
}

json::JValue Service::handle_script(
    const json::JValue& req, std::chrono::steady_clock::time_point deadline) {
  const json::JValue* script_v = req.get("script");
  if (script_v == nullptr || !script_v->is_string()) {
    return error_response(&req, "bad_request", "E0011",
                          "malformed service request: missing string field "
                          "\"script\"");
  }
  const std::string& script = script_v->as_string();
  if (script.size() > cfg_.max_script_bytes) {
    return error_response(&req, "bad_request", "E0012",
                          "request exceeds the service admission limits: "
                          "script of " + std::to_string(script.size()) +
                          " bytes (limit " +
                          std::to_string(cfg_.max_script_bytes) + ")");
  }

  const int np = static_cast<int>(req.get_number("np", 1));
  if (np < 1 || np > cfg_.max_np) {
    return error_response(&req, "bad_request", "E0012",
                          "request exceeds the service admission limits: np=" +
                              std::to_string(np) + " (limit 1.." +
                              std::to_string(cfg_.max_np) + ")");
  }
  const int opt_level =
      static_cast<int>(req.get_number("opt_level", 2));
  if (opt_level < 0 || opt_level > 2) {
    return error_response(&req, "bad_request", "E0011",
                          "malformed service request: opt_level must be 0, 1 "
                          "or 2");
  }
  const std::string machine = req.get_string("machine", "ideal");
  const bool strict_infer = req.get_bool("strict_infer", false);
  // Resolve the execution tier here, before the cache key is formed: an
  // absent field follows the opt level (-O0 → tree walker, -O1/-O2 → the
  // bytecode VM), exactly like local otterc.
  const std::string backend_req = req.get_string("backend", "");
  if (!backend_req.empty() && backend_req != "vm" && backend_req != "tree") {
    return error_response(&req, "bad_request", "E0011",
                          "malformed service request: \"backend\" must be "
                          "vm or tree");
  }
  const std::string backend =
      !backend_req.empty() ? backend_req : (opt_level == 0 ? "tree" : "vm");
  const bool want_run = req.get_bool("run", true);

  const std::string fault_spec = req.get_string("fault_plan", "");
  if (!fault_spec.empty() && !cfg_.allow_fault_plans) {
    return error_response(&req, "bad_request", "E0012",
                          "request exceeds the service admission limits: "
                          "fault injection is disabled on this server");
  }
  mpi::FaultPlan fault;
  if (!fault_spec.empty()) {
    try {
      fault = mpi::FaultPlan::parse(fault_spec);
    } catch (const mpi::FaultPlanError& e) {
      return error_response(&req, "bad_request", "E0013", e.what());
    } catch (const std::exception& e) {
      return error_response(&req, "bad_request", "E0011",
                            std::string("malformed service request: ") +
                                e.what());
    }
  }

  // ---- sandbox / governor request fields ------------------------------
  const double mem_mb = req.get_number("mem_mb", -1.0);
  if (req.get("mem_mb") != nullptr && (!(mem_mb >= 0) || mem_mb > 1e9)) {
    return error_response(&req, "bad_request", "E0011",
                          "malformed service request: \"mem_mb\" must be a "
                          "nonnegative number of MiB");
  }
  const uint64_t mem_bytes =
      mem_mb >= 0 ? static_cast<uint64_t>(mem_mb * 1024.0 * 1024.0)
                  : cfg_.default_mem_bytes;

  const int retries = static_cast<int>(req.get_number("retries", 0));
  if (retries < 0 || retries > cfg_.max_retries) {
    return error_response(&req, "bad_request", "E0011",
                          "malformed service request: \"retries\" must be in "
                          "0.." + std::to_string(cfg_.max_retries));
  }

  const std::string test_kill = req.get_string("test_kill", "");
  if (!test_kill.empty()) {
    if (!cfg_.allow_fault_plans) {
      return error_response(&req, "bad_request", "E0012",
                            "request exceeds the service admission limits: "
                            "fault injection is disabled on this server");
    }
    if (cfg_.isolate != IsolateMode::Process) {
      return error_response(&req, "bad_request", "E0012",
                            "request exceeds the service admission limits: "
                            "\"test_kill\" requires --isolate=process");
    }
    if (test_kill != "segv" && test_kill != "kill" && test_kill != "exit" &&
        test_kill != "hang") {
      return error_response(&req, "bad_request", "E0011",
                            "malformed service request: \"test_kill\" must "
                            "be segv, kill, exit, or hang");
    }
  }

  // ---- checkpoint/resume request fields -------------------------------
  // The client names a directory *under* the server's checkpoint root; a
  // bare [A-Za-z0-9._-] name (no separators, no dot-dot) keeps requests
  // from escaping it.
  const std::string ckpt_name = req.get_string("checkpoint_dir", "");
  const int ckpt_interval = static_cast<int>(req.get_number("checkpoint", 16));
  const bool ckpt_resume = req.get_bool("resume", false);
  std::string ckpt_dir;
  if (!ckpt_name.empty() || ckpt_resume) {
    if (cfg_.checkpoint_root.empty()) {
      return error_response(&req, "bad_request", "E0012",
                            "request exceeds the service admission limits: "
                            "checkpointing is disabled on this server "
                            "(start otterd with --checkpoint-root)");
    }
    const bool clean_name =
        !ckpt_name.empty() && ckpt_name.size() <= 64 && ckpt_name != "." &&
        ckpt_name != ".." &&
        std::all_of(ckpt_name.begin(), ckpt_name.end(), [](unsigned char c) {
          return std::isalnum(c) != 0 || c == '.' || c == '_' || c == '-';
        });
    if (!clean_name) {
      return error_response(&req, "bad_request", "E0011",
                            "malformed service request: \"checkpoint_dir\" "
                            "must be a bare [A-Za-z0-9._-] name");
    }
    if (ckpt_interval < 1 || ckpt_interval > 1000000) {
      return error_response(&req, "bad_request", "E0011",
                            "malformed service request: \"checkpoint\" "
                            "interval must be in 1..1000000 statements");
    }
    ckpt_dir = cfg_.checkpoint_root + "/" + ckpt_name;
  }

  // Quarantine check before any compile/run work is spent on the script.
  const std::string hash = script_hash(script);
  const CircuitBreaker::Verdict verdict = breaker_.admit(hash);
  if (verdict == CircuitBreaker::Verdict::Quarantined) {
    quarantined_.fetch_add(1);
    json::JValue resp = error_response(
        &req, "quarantined", "E0010",
        "script quarantined after repeated crashes (circuit breaker open)");
    resp.set("hash", hash);
    resp.set("retry_after", breaker_.retry_after(hash));
    return resp;
  }

  double remaining = seconds_until(deadline);
  if (remaining <= 0) {
    deadline_expired_.fetch_add(1);
    return error_response(&req, "deadline", "E0009",
                          "request wall-clock deadline exceeded before "
                          "compilation started");
  }

  // ---- compile (or pull the artifact out of the cache) ----------------
  const std::string key =
      artifact_key(hash, opt_level, machine, strict_infer, backend);
  std::shared_ptr<const Artifact> art = cache_.lookup(key);
  const bool cache_hit = art != nullptr;
  if (!cache_hit) {
    driver::CompileOptions copts;
    copts.opt.level = opt_level;
    copts.budget = cfg_.budget;
    if (copts.budget.max_wall_seconds <= 0 ||
        copts.budget.max_wall_seconds > remaining) {
      copts.budget.max_wall_seconds = remaining;
    }
    copts.strict_infer = strict_infer;
    copts.source_name = "<request " + hash + ">";
    std::shared_ptr<const driver::CompileResult> compiled =
        driver::compile_script(script, {}, copts);
    if (!compiled->ok) {
      std::string code = first_error_code(compiled->diags);
      const char* status = "compile_error";
      if (code == "E0004" && seconds_until(deadline) <= 0) {
        // The wall-clock budget that fired was the request deadline, not
        // the server's own ceiling: report E0009 so clients know to retry.
        code = "E0009";
        status = "deadline";
        deadline_expired_.fetch_add(1);
      } else {
        compile_errors_.fetch_add(1);
      }
      json::JValue resp =
          error_response(&req, status, code.c_str(), "compilation failed");
      resp.set("hash", hash);
      resp.set("cache", "miss");
      resp.set("diagnostics", diags_json(compiled->diags));
      return resp;
    }
    auto fresh = std::make_shared<Artifact>();
    fresh->diags = diags_json(compiled->diags);
    fresh->bytes = estimate_artifact_bytes(compiled->lir, script.size());
    fresh->compiled = std::move(compiled);
    if (backend == "vm") {
      // Compile the bytecode once per artifact: every request that hits
      // this entry shares the immutable module instead of re-lowering it.
      auto mod = std::make_shared<vm::BcModule>(
          vm::compile_bytecode(fresh->compiled->lir));
      size_t code_bytes = 0;
      for (const vm::BcFunction& f : mod->functions)
        code_bytes += f.chunk.code.size() * sizeof(vm::BcInstr);
      fresh->bytes += mod->script.code.size() * sizeof(vm::BcInstr) +
                      code_bytes;
      fresh->bytecode = std::move(mod);
    }
    cache_.insert(key, fresh);
    art = std::move(fresh);
  }

  json::JValue resp{json::JObject{}};
  if (const json::JValue* id = req.get("id")) resp.set("id", *id);
  resp.set("hash", hash);
  resp.set("cache", cache_hit ? "hit" : "miss");
  resp.set("diagnostics", art->diags);

  if (!want_run) {
    ok_.fetch_add(1);
    if (verdict == CircuitBreaker::Verdict::Probe) {
      breaker_.record_success(hash);
    }
    resp.set("status", "ok");
    attach_stats(resp);
    return resp;
  }

  remaining = seconds_until(deadline);
  if (remaining <= 0) {
    deadline_expired_.fetch_add(1);
    breaker_.record_failure(hash);  // full-deadline burn counts as a crash
    return error_response(&req, "deadline", "E0009",
                          "request wall-clock deadline exceeded before "
                          "execution started");
  }

  // ---- run: in-process barrier or fork-per-request sandbox -------------
  RunSetup setup;
  setup.np = np;
  setup.machine = machine;
  setup.ckpt_dir = ckpt_dir;
  setup.test_kill = test_kill;
  driver::ExecOptions& eo = setup.eo;
  eo.backend = backend == "vm" ? driver::ExecBackend::Vm
                               : driver::ExecBackend::Tree;
  // The artifact (held alive for the whole request) owns the module; the
  // sandbox fork inherits the mapping, so the pointer stays valid in the
  // child too.
  eo.bytecode = art->bytecode.get();
  eo.rand_seed = static_cast<uint64_t>(req.get_number("rand_seed", 1));
  eo.spmd.fault = fault;
  eo.spmd.run_deadline = deadline;
  eo.spmd.cancel = &shutdown_;
  eo.spmd.mem_budget_bytes = mem_bytes;
  if (!ckpt_dir.empty()) {
    eo.ckpt.interval = static_cast<uint32_t>(ckpt_interval);
    eo.ckpt.dir = ckpt_dir;
    eo.ckpt.resume = ckpt_resume;
  }

  json::JValue partial =
      cfg_.isolate == IsolateMode::Process
          ? run_sandboxed(*art->compiled, std::move(setup), deadline, retries)
          : run_artifact(*art->compiled, setup);

  // Keep the retention budget honest for successes *and* failures — a crash
  // may well have happened after several generations were committed (that
  // is the point), and the next resume must find them pruned, not grown.
  if (!ckpt_dir.empty())
    snap::prune_checkpoints(ckpt_dir, cfg_.checkpoint_bytes);

  const std::string status = partial.get_string("status", "internal_error");
  if (status == "ok") {
    ok_.fetch_add(1);
    breaker_.record_success(hash);
    resp.set("status", "ok");
    for (const char* key :
         {"output", "max_vtime", "comm_ops", "checkpoint", "warnings",
          "governor", "attempts"}) {
      if (const json::JValue* v = partial.get(key)) resp.set(key, *v);
    }
    attach_stats(resp);
    return resp;
  }

  // Failure: the breaker and the counters are fed from the classification,
  // which makes a sandboxed crash (E0014) advance the same quarantine
  // machinery an in-process exception always has.
  breaker_.record_failure(hash);
  const std::string code = partial.get_string("code", "E5001");
  if (status == "deadline") {
    deadline_expired_.fetch_add(1);
  } else {
    runtime_errors_.fetch_add(1);
  }
  if (code == "E0014") worker_crashes_.fetch_add(1);
  json::JValue fr =
      error_response(&req, status.c_str(), code.c_str(),
                     partial.get_string("message", "execution failed"));
  for (const char* key :
       {"failures", "worker_stderr", "governor", "attempts"}) {
    if (const json::JValue* v = partial.get(key)) fr.set(key, *v);
  }
  fr.set("hash", hash);
  fr.set("cache", cache_hit ? "hit" : "miss");
  return fr;
}

json::JValue Service::run_sandboxed(
    const driver::CompileResult& compiled, RunSetup s,
    std::chrono::steady_clock::time_point deadline, int retries) {
  for (int attempt = 0;; ++attempt) {
    SandboxLimits lim;
    lim.mem_budget_bytes = s.eo.spmd.mem_budget_bytes;
    const double remaining = seconds_until(deadline);
    // CPU backstop: virtual-time ranks are real threads, so CPU time can
    // legitimately exceed wall time by ~np. Generous on purpose — the
    // wall-clock SIGKILL is the primary kill path.
    lim.cpu_limit_seconds =
        remaining > 0 ? remaining * (s.np + 1) + 2.0 : 0.0;
    lim.kill_grace = cfg_.kill_grace;
    lim.stderr_cap = cfg_.stderr_cap;
    lim.test_kill = s.test_kill;
    lim.cancel = &shutdown_;

    const SandboxOutcome oc = run_in_sandbox(
        [&]() { return run_artifact(compiled, s).dump(); }, deadline, lim,
        supervisor_);

    if (oc.replied) {
      // Clean reply — success or a deterministic coded error; either way
      // there is nothing a respawn would change.
      json::JValue partial{json::JObject{}};
      if (std::optional<json::JValue> p = json::parse(oc.reply);
          p && p->is_object()) {
        partial = std::move(*p);
      } else {
        partial.set("status", "runtime_error");
        partial.set("code", "E0014");
        partial.set("message", "worker died: torn or unparseable reply");
        if (!oc.child_stderr.empty())
          partial.set("worker_stderr", oc.child_stderr);
      }
      if (attempt > 0) partial.set("attempts", attempt + 1);
      return partial;
    }

    if (oc.timed_out) {
      // The SIGKILL backstop fired (deadline or daemon shutdown). No time
      // is left, so the retry ladder does not apply.
      json::JValue partial{json::JObject{}};
      partial.set("status", "deadline");
      partial.set("code", "E0009");
      partial.set("message",
                  "request wall-clock deadline exceeded during execution "
                  "(worker killed)");
      if (!oc.child_stderr.empty())
        partial.set("worker_stderr", oc.child_stderr);
      if (attempt > 0) partial.set("attempts", attempt + 1);
      return partial;
    }

    // The child died without replying. Crashes are the retryable class
    // (PR 7's ladder): respawn with checkpoint resume when available, so a
    // mid-run death continues instead of starting over.
    if (attempt < retries && seconds_until(deadline) > 0) {
      worker_retries_.fetch_add(1);
      if (!s.ckpt_dir.empty()) s.eo.ckpt.resume = true;
      continue;
    }
    json::JValue partial{json::JObject{}};
    partial.set("status", "runtime_error");
    partial.set("code", "E0014");
    partial.set("message",
                oc.signaled
                    ? "worker died: signal " + std::to_string(oc.term_signal)
                    : "worker died: exit status " +
                          std::to_string(oc.exit_code) + " before replying");
    if (!oc.child_stderr.empty())
      partial.set("worker_stderr", oc.child_stderr);
    if (attempt > 0) partial.set("attempts", attempt + 1);
    return partial;
  }
}

json::JValue Service::error_response(const json::JValue* req,
                                     const char* status, const char* code,
                                     std::string message) {
  switch (status[0]) {
    // Counter bumps for the statuses whose single construction site is
    // here; the richer paths (deadline, shed, quarantine, runtime) count
    // at their decision points because one status can have several causes.
    case 'b': bad_requests_.fetch_add(1); break;
    case 'i': internal_errors_.fetch_add(1); break;
    default: break;
  }
  json::JValue resp{json::JObject{}};
  if (req != nullptr) {
    if (const json::JValue* id = req->get("id")) resp.set("id", *id);
  }
  resp.set("status", status);
  if (code != nullptr && code[0] != '\0') resp.set("code", code);
  resp.set("message", std::move(message));
  attach_stats(resp);
  return resp;
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.received = received_.load();
  s.ok = ok_.load();
  s.compile_errors = compile_errors_.load();
  s.runtime_errors = runtime_errors_.load();
  s.deadline_expired = deadline_expired_.load();
  s.shed = shed_.load();
  s.quarantined = quarantined_.load();
  s.bad_requests = bad_requests_.load();
  s.internal_errors = internal_errors_.load();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.breaker_trips = breaker_.trip_count();
  s.cache_bytes = cache_.bytes();
  s.cache_entries = cache_.entries();
  s.worker_crashes = worker_crashes_.load();
  s.worker_retries = worker_retries_.load();
  const Supervisor::Stats sb = supervisor_.stats();
  s.sandbox_spawned = sb.spawned;
  s.sandbox_reaped = sb.reaped;
  s.sandbox_killed = sb.killed;
  const gov::GovernorStats gs = gov::ResourceGovernor::instance().stats();
  s.gov_peak_bytes = gs.peak;
  s.gov_denials = gs.denials;
  return s;
}

void Service::attach_stats(json::JValue& resp) {
  const ServiceStats s = stats();
  json::JValue j{json::JObject{}};
  j.set("received", s.received);
  j.set("ok", s.ok);
  j.set("compile_errors", s.compile_errors);
  j.set("runtime_errors", s.runtime_errors);
  j.set("deadline_expired", s.deadline_expired);
  j.set("shed", s.shed);
  j.set("quarantined", s.quarantined);
  j.set("bad_requests", s.bad_requests);
  j.set("internal_errors", s.internal_errors);
  j.set("cache_hits", s.cache_hits);
  j.set("cache_misses", s.cache_misses);
  j.set("cache_evictions", s.cache_evictions);
  j.set("breaker_trips", s.breaker_trips);
  j.set("cache_bytes", s.cache_bytes);
  j.set("cache_entries", s.cache_entries);
  j.set("worker_crashes", s.worker_crashes);
  j.set("worker_retries", s.worker_retries);
  j.set("sandbox_spawned", s.sandbox_spawned);
  j.set("sandbox_reaped", s.sandbox_reaped);
  j.set("sandbox_killed", s.sandbox_killed);
  j.set("gov_peak_bytes", s.gov_peak_bytes);
  j.set("gov_denials", s.gov_denials);
  resp.set("stats", std::move(j));
}

// -- WorkerPool ---------------------------------------------------------------

WorkerPool::WorkerPool(int workers, size_t queue_limit) : limit_(queue_limit) {
  workers_.reserve(static_cast<size_t>(std::max(1, workers)));
  for (int i = 0; i < std::max(1, workers); ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::try_submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= limit_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

void WorkerPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

size_t WorkerPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::worker_main() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // the Service's own barrier makes this no-throw
  }
}

}  // namespace otter::service
