// Process-isolated execution sandboxes for otterd.
//
// Compilation is cheap, deterministic, and hardened by budgets, so it stays
// in the daemon process (and keeps the shared artifact cache warm). Script
// *execution* is where arbitrary user computation runs — a wild pointer in
// a generated kernel, a runaway allocation, or an injected crash used to
// take the whole daemon down. run_in_sandbox() forks each run into a
// short-lived child that inherits the compiled artifact copy-on-write,
// executes it, and ships one JSON response line back over a socketpair
// before _exit(0). The parent never trusts the child to die politely:
//
//   * a SIGKILL backstop fires once the request deadline (+ a small grace)
//     passes, so a wedged child cannot outlive its request;
//   * the child's stderr is captured through a pipe (capped) so a crash
//     leaves a debuggable trace in the response instead of interleaving
//     with the daemon's own log;
//   * setrlimit(RLIMIT_AS / RLIMIT_CPU) is applied in the child as
//     belt-and-suspenders under the governor's accounted budget (the
//     address-space limit is skipped under sanitizers, which reserve
//     terabytes of shadow memory up front).
//
// The Supervisor is the shared bookkeeping object: it counts spawns, reaps,
// deadline kills, and crash deaths so the daemon's stats report how hard
// the isolation layer is working. Classifying a death into a response code
// is the Service's job (E0014 for a worker that died before replying,
// E0009 for a deadline kill) — see server.cpp.
//
// Fork-safety notes: the child never touches the daemon's mutex-guarded
// state (cache, breaker, worker pool); the run closure only reads the
// immutable compiled artifact and fresh per-run objects. The child does not
// exec, so a crashing script costs one fork, not a compile.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace otter::service {

/// Hard limits applied inside the child before it runs the request.
struct SandboxLimits {
  /// Governor budget for the run; also sizes the RLIMIT_AS backstop
  /// (budget x 4 + fixed headroom). 0 = no address-space limit.
  uint64_t mem_budget_bytes = 0;
  /// RLIMIT_CPU seconds (0 = none). Sized generously from the request
  /// deadline: the wall-clock backstop is the primary kill path.
  double cpu_limit_seconds = 0;
  /// Extra wall-clock seconds past the deadline before SIGKILL, giving the
  /// in-process deadline machinery (E0009/E5004) first shot at a clean
  /// coded reply.
  double kill_grace = 0.5;
  /// Byte cap on captured child stderr (the head is kept; a marker notes
  /// truncation).
  size_t stderr_cap = 8192;
  /// Chaos hook (gated behind allow_fault_plans): make the child die this
  /// way instead of running the job. "" | "segv" | "kill" | "exit" | "hang".
  std::string test_kill;
  /// Daemon shutdown flag; when raised mid-run the child is killed early
  /// and the outcome reports a timeout (the service renders it as E0009).
  const std::atomic<bool>* cancel = nullptr;
};

/// What happened to one sandboxed run, for the Service to classify.
struct SandboxOutcome {
  bool replied = false;      ///< a complete response line arrived
  std::string reply;         ///< the line (no trailing newline)
  bool timed_out = false;    ///< parent SIGKILLed it (deadline or cancel)
  bool signaled = false;     ///< child terminated by a signal
  int term_signal = 0;       ///< valid when signaled
  int exit_code = 0;         ///< valid when !signaled
  std::string child_stderr;  ///< captured stderr, capped at stderr_cap
};

/// Shared child-process bookkeeping across all sandboxed requests.
class Supervisor {
 public:
  struct Stats {
    uint64_t spawned = 0;  ///< children forked
    uint64_t reaped = 0;   ///< children waited on (== spawned when idle)
    uint64_t killed = 0;   ///< SIGKILLed by the deadline/cancel backstop
    uint64_t crashed = 0;  ///< died without producing a reply
  };

  void on_spawn() { spawned_.fetch_add(1, std::memory_order_relaxed); }
  void on_reap(bool killed, bool crashed) {
    reaped_.fetch_add(1, std::memory_order_relaxed);
    if (killed) killed_.fetch_add(1, std::memory_order_relaxed);
    if (crashed) crashed_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] Stats stats() const {
    return {spawned_.load(std::memory_order_relaxed),
            reaped_.load(std::memory_order_relaxed),
            killed_.load(std::memory_order_relaxed),
            crashed_.load(std::memory_order_relaxed)};
  }

 private:
  std::atomic<uint64_t> spawned_{0};
  std::atomic<uint64_t> reaped_{0};
  std::atomic<uint64_t> killed_{0};
  std::atomic<uint64_t> crashed_{0};
};

/// Forks, runs `job` in the child (it returns the JSON response line to
/// ship), and reaps the child no matter how it dies. Never throws; a fork
/// or pipe failure is reported as a crashed, unreplied outcome.
SandboxOutcome run_in_sandbox(const std::function<std::string()>& job,
                              std::chrono::steady_clock::time_point deadline,
                              const SandboxLimits& limits, Supervisor& sup);

}  // namespace otter::service
