// Content-addressed artifact cache for the compile service.
//
// Key: (script hash, opt level, machine profile, strict-inference flag,
// execution backend) — everything that can change what the compiler
// produces. The backend is part of the key because a VM-tier artifact
// carries a precompiled bytecode module a tree-tier artifact does not;
// serving one for the other would either waste the precompile or execute
// without it. Because the key is
// content-addressed there is no staleness to invalidate: a changed script is
// a different key. The only eviction is LRU under a byte budget, so a hot
// script's compiled LIR stays resident while one-shot scripts age out.
//
// Entries are immutable once inserted (shared_ptr<const Entry>); concurrent
// requests execute the same cached LProgram simultaneously — the direct
// executor treats it as read-only (each Executor owns its kernel cache and
// frames), which the concurrent-pipeline stress test pins down under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "driver/pipeline.hpp"
#include "support/json.hpp"

namespace otter::vm {
struct BcModule;
}  // namespace otter::vm

namespace otter::service {

/// Cache key for one compilation configuration of one script. `backend` is
/// the *resolved* execution tier ("vm" or "tree"), never the empty
/// follow-the-opt-level default: two requests that resolve to the same tier
/// must share an entry regardless of how they asked for it.
std::string artifact_key(const std::string& script_hash, int opt_level,
                         const std::string& machine, bool strict_infer,
                         const std::string& backend);

/// One cached compilation: the full compile result (diagnostics engine,
/// inference tables, post-optimizer LIR) plus the pre-rendered diagnostics
/// array so responses never re-walk the DiagEngine of a shared artifact.
/// VM-tier artifacts also carry the bytecode module compiled once at insert
/// time, shared read-only by every request that hits the entry.
struct Artifact {
  std::shared_ptr<const driver::CompileResult> compiled;
  // Declared after `compiled` so it is destroyed first: the module borrows
  // the CompileResult's LProgram (kernel slot tables point into the LIR).
  std::shared_ptr<const vm::BcModule> bytecode;  ///< null for tree tier
  json::JValue diags;  ///< rendered diagnostics (warnings for ok compiles)
  size_t bytes = 0;    ///< estimated resident size, charged to the budget
};

/// Rough resident-size estimate for the byte budget: LIR dump length scaled
/// for node overhead plus the source size. Off by a constant factor at
/// worst, which an LRU budget tolerates.
size_t estimate_artifact_bytes(const lower::LProgram& lir,
                               size_t source_bytes);

class ArtifactCache {
 public:
  explicit ArtifactCache(size_t byte_budget) : budget_(byte_budget) {}

  /// Returns the entry and bumps it most-recently-used, or nullptr (a miss).
  std::shared_ptr<const Artifact> lookup(const std::string& key);

  /// Inserts (or replaces) an entry and evicts LRU entries until the byte
  /// budget holds. An artifact larger than the whole budget is not cached.
  void insert(const std::string& key, std::shared_ptr<const Artifact> art);

  [[nodiscard]] uint64_t hits() const { return hits_.load(); }
  [[nodiscard]] uint64_t misses() const { return misses_.load(); }
  [[nodiscard]] uint64_t evictions() const { return evictions_.load(); }
  [[nodiscard]] size_t bytes() const;
  [[nodiscard]] size_t entries() const;

 private:
  void evict_to_budget_locked();

  const size_t budget_;
  mutable std::mutex mu_;
  // LRU list front = most recent; map holds the list iterator for O(1) bump.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const Artifact> art;
    std::list<std::string>::iterator pos;
  };
  std::unordered_map<std::string, Slot> map_;
  size_t bytes_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace otter::service
