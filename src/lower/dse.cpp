// Liveness-driven dead-statement elimination over the lowered IR.
//
// A pure instruction whose results no later statement (or observable
// output) can read is removed. Purity is conservative: anything that
// prints, aborts, calls a user function, performs I/O, mutates a matrix in
// place, or advances the shared replicated random sequence is kept — so the
// SPMD ranks' lockstep communication schedule and the random stream are
// unchanged by the optimization.
//
// Liveness runs backward over the structured LIR directly (no CFG needed):
// loops iterate a read-only transfer to a fixpoint before the mutating
// pass, and a break/continue/return conservatively revives every name the
// scope ever reads.
#include <string>
#include <unordered_set>
#include <vector>

#include "lower/lower.hpp"

namespace otter::lower {

namespace {

using Set = std::unordered_set<std::string>;

bool tree_has_rand(const LExpr& e) {
  if (e.kind == LExpr::Kind::RandScalar) return true;
  if (e.a && tree_has_rand(*e.a)) return true;
  if (e.b && tree_has_rand(*e.b)) return true;
  return false;
}

void tree_vars(const LExpr* e, Set& out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case LExpr::Kind::ScalarVar:
    case LExpr::Kind::MatVar:
    case LExpr::Kind::RowsOf:
    case LExpr::Kind::ColsOf:
    case LExpr::Kind::NumelOf:
      out.insert(e->var);
      break;
    default:
      break;
  }
  tree_vars(e->a.get(), out);
  tree_vars(e->b.get(), out);
}

/// Reads of one instruction, excluding control-flow children (conditions,
/// bounds and nested bodies are handled by the structured walk).
void instr_reads(const LInstr& in, Set& out) {
  for (const LOperand& o : in.args) {
    if (o.is_matrix) out.insert(o.mat);
    tree_vars(o.scalar.get(), out);
  }
  tree_vars(in.tree.get(), out);
  for (const auto& row : in.literal_rows) {
    for (const LExprPtr& e : row) tree_vars(e.get(), out);
  }
}

/// In-place matrix mutations: the destination is read-modify-write, so it
/// stays live across the instruction instead of being killed.
bool is_rmw(LOp op) {
  switch (op) {
    case LOp::SetElem:
    case LOp::AssignRowOp:
    case LOp::AssignColOp:
    case LOp::AssignSliceOp:
      return true;
    default:
      return false;
  }
}

bool any_tree_has_rand(const LInstr& in) {
  for (const LOperand& o : in.args) {
    if (o.scalar && tree_has_rand(*o.scalar)) return true;
  }
  if (in.tree && tree_has_rand(*in.tree)) return true;
  for (const auto& row : in.literal_rows) {
    for (const LExprPtr& e : row) {
      if (e && tree_has_rand(*e)) return true;
    }
  }
  return false;
}

/// Whether the instruction may be deleted when its results are dead.
bool removable(const LInstr& in) {
  switch (in.op) {
    case LOp::MatMul:
    case LOp::MatVec:
    case LOp::VecMat:
    case LOp::OuterProd:
    case LOp::TransposeOp:
    case LOp::DotProd:
    case LOp::Reduce:
    case LOp::Colwise:
    case LOp::Norm:
    case LOp::Trapz:
    case LOp::GetElem:
    case LOp::ExtractRowOp:
    case LOp::ExtractColOp:
    case LOp::SliceVec:
    case LOp::FillZeros:
    case LOp::FillOnes:
    case LOp::FillEye:
    case LOp::FillRange:
    case LOp::FillLinspace:
    case LOp::FromLiteral:
    case LOp::CopyMat:
    case LOp::Elemwise:
    case LOp::ScalarAssign:
      // FillRand is deliberately absent: it advances the shared random
      // sequence, so deleting it would shift every later draw.
      return !any_tree_has_rand(in);
    default:
      return false;
  }
}

/// All names read anywhere in a body (recursively) — the conservative
/// live set applied at break/continue/return.
void collect_ever_read(const std::vector<LInstrPtr>& body, Set& out) {
  for (const LInstrPtr& ip : body) {
    const LInstr& in = *ip;
    instr_reads(in, out);
    if (is_rmw(in.op) && !in.dst.empty()) out.insert(in.dst);
    for (const LIfArm& arm : in.arms) {
      tree_vars(arm.cond.get(), out);
      collect_ever_read(arm.body, out);
    }
    tree_vars(in.cond.get(), out);
    tree_vars(in.lo.get(), out);
    tree_vars(in.step.get(), out);
    tree_vars(in.hi.get(), out);
    collect_ever_read(in.body, out);
  }
}

class Dse {
 public:
  size_t run(LProgram& prog) {
    ever_read_.clear();
    collect_ever_read(prog.script, ever_read_);
    Set live;  // a compiled script's observable results are what it prints
    process(prog.script, live);

    for (LFunction& fn : prog.functions) {
      ever_read_.clear();
      collect_ever_read(fn.body, ever_read_);
      Set out_live;
      for (const LVarDecl& d : fn.outs) {
        ever_read_.insert(d.name);
        out_live.insert(d.name);
      }
      process(fn.body, out_live);
    }
    return removed_;
  }

 private:
  /// Backward transfer of one non-control instruction over `live`.
  static void transfer(const LInstr& in, Set& live) {
    if (!is_rmw(in.op)) {
      if (!in.dst.empty()) live.erase(in.dst);
      if (!in.sdst.empty()) live.erase(in.sdst);
      for (const LVarDecl& d : in.call_dsts) live.erase(d.name);
    } else if (!in.dst.empty()) {
      live.insert(in.dst);
    }
    instr_reads(in, live);
  }

  /// Non-mutating backward liveness over a body (used to reach the loop
  /// fixpoint before any removal decision inside the loop is made).
  void scan(const std::vector<LInstrPtr>& body, Set& live) {
    for (size_t i = body.size(); i-- > 0;) {
      const LInstr& in = *body[i];
      switch (in.op) {
        case LOp::IfOp: {
          Set merged = has_else(in) ? Set{} : live;
          for (const LIfArm& arm : in.arms) {
            Set l = live;
            scan(arm.body, l);
            merged.insert(l.begin(), l.end());
            tree_vars(arm.cond.get(), merged);
          }
          live = std::move(merged);
          break;
        }
        case LOp::WhileOp:
        case LOp::ForOp: {
          Set entry = loop_entry_live(in, live);
          live.insert(entry.begin(), entry.end());
          add_loop_header_reads(in, live);
          break;
        }
        case LOp::BreakOp:
        case LOp::ContinueOp:
        case LOp::ReturnOp:
          live = ever_read_;
          break;
        default:
          transfer(in, live);
      }
    }
  }

  static bool has_else(const LInstr& in) {
    return !in.arms.empty() && !in.arms.back().cond;
  }

  static void add_loop_header_reads(const LInstr& in, Set& live) {
    if (in.op == LOp::WhileOp) {
      tree_vars(in.cond.get(), live);
    } else {
      live.erase(in.loop_var);
      tree_vars(in.lo.get(), live);
      tree_vars(in.step.get(), live);
      tree_vars(in.hi.get(), live);
    }
  }

  /// Live-at-body-entry fixpoint for a loop: E = transfer_body(E U after),
  /// accounting for the back edge re-reading what an iteration needs.
  Set loop_entry_live(const LInstr& in, const Set& after) {
    Set entry;
    for (;;) {
      Set l = after;
      l.insert(entry.begin(), entry.end());
      if (in.op == LOp::ForOp) l.insert(in.loop_var);  // next-iteration def
      scan(in.body, l);
      if (in.op == LOp::WhileOp) tree_vars(in.cond.get(), l);
      if (in.op == LOp::ForOp) l.erase(in.loop_var);
      bool grew = false;
      for (const std::string& n : l) {
        if (entry.insert(n).second) grew = true;
      }
      if (!grew) return entry;
    }
  }

  /// Mutating backward pass: removes dead pure instructions.
  void process(std::vector<LInstrPtr>& body, Set& live) {
    for (size_t i = body.size(); i-- > 0;) {
      LInstr& in = *body[i];
      switch (in.op) {
        case LOp::IfOp: {
          Set merged = has_else(in) ? Set{} : live;
          for (LIfArm& arm : in.arms) {
            Set l = live;
            process(arm.body, l);
            merged.insert(l.begin(), l.end());
            tree_vars(arm.cond.get(), merged);
          }
          live = std::move(merged);
          break;
        }
        case LOp::WhileOp:
        case LOp::ForOp: {
          Set entry = loop_entry_live(in, live);
          Set body_live = live;
          body_live.insert(entry.begin(), entry.end());
          if (in.op == LOp::WhileOp) tree_vars(in.cond.get(), body_live);
          process(in.body, body_live);
          live.insert(entry.begin(), entry.end());
          add_loop_header_reads(in, live);
          break;
        }
        case LOp::BreakOp:
        case LOp::ContinueOp:
        case LOp::ReturnOp:
          live = ever_read_;
          break;
        default: {
          bool defines = !in.dst.empty() || !in.sdst.empty();
          bool dead = defines && removable(in) &&
                      (in.dst.empty() || !live.contains(in.dst)) &&
                      (in.sdst.empty() || !live.contains(in.sdst));
          if (dead) {
            body.erase(body.begin() + static_cast<ptrdiff_t>(i));
            ++removed_;
          } else {
            transfer(in, live);
          }
        }
      }
    }
  }

  Set ever_read_;
  size_t removed_ = 0;
};

}  // namespace

size_t run_dse(LProgram& prog) { return Dse().run(prog); }

}  // namespace otter::lower
