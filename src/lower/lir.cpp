#include "lower/lir.hpp"

#include <sstream>

namespace otter::lower {

LExprPtr limm(double v) {
  auto e = std::make_unique<LExpr>();
  e->kind = LExpr::Kind::Imm;
  e->imm = v;
  return e;
}

LExprPtr lsvar(std::string name) {
  auto e = std::make_unique<LExpr>();
  e->kind = LExpr::Kind::ScalarVar;
  e->var = std::move(name);
  return e;
}

LExprPtr lmvar(std::string name) {
  auto e = std::make_unique<LExpr>();
  e->kind = LExpr::Kind::MatVar;
  e->var = std::move(name);
  return e;
}

LExprPtr lbin(EwBin op, LExprPtr a, LExprPtr b) {
  auto e = std::make_unique<LExpr>();
  e->kind = LExpr::Kind::Bin;
  e->bop = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

LExprPtr lun(EwUn op, LExprPtr a) {
  auto e = std::make_unique<LExpr>();
  e->kind = LExpr::Kind::Un;
  e->uop = op;
  e->a = std::move(a);
  return e;
}

LExprPtr lquery(LExpr::Kind k, std::string var) {
  auto e = std::make_unique<LExpr>();
  e->kind = k;
  e->var = std::move(var);
  return e;
}

LExprPtr clone_lexpr(const LExpr& e) {
  auto c = std::make_unique<LExpr>();
  c->kind = e.kind;
  c->imm = e.imm;
  c->var = e.var;
  c->bop = e.bop;
  c->uop = e.uop;
  if (e.a) c->a = clone_lexpr(*e.a);
  if (e.b) c->b = clone_lexpr(*e.b);
  return c;
}

namespace {

const char* bin_name(EwBin op) {
  switch (op) {
    case EwBin::Add: return "+";
    case EwBin::Sub: return "-";
    case EwBin::Mul: return "*";
    case EwBin::Div: return "/";
    case EwBin::Pow: return "pow";
    case EwBin::Lt: return "<";
    case EwBin::Le: return "<=";
    case EwBin::Gt: return ">";
    case EwBin::Ge: return ">=";
    case EwBin::Eq: return "==";
    case EwBin::Ne: return "~=";
    case EwBin::And: return "&";
    case EwBin::Or: return "|";
    case EwBin::Mod: return "mod";
    case EwBin::Rem: return "rem";
    case EwBin::Min: return "min";
    case EwBin::Max: return "max";
  }
  return "?";
}

const char* un_name(EwUn op) {
  switch (op) {
    case EwUn::Neg: return "neg";
    case EwUn::Not: return "not";
    case EwUn::Abs: return "abs";
    case EwUn::Sqrt: return "sqrt";
    case EwUn::Exp: return "exp";
    case EwUn::Log: return "log";
    case EwUn::Sin: return "sin";
    case EwUn::Cos: return "cos";
    case EwUn::Tan: return "tan";
    case EwUn::Floor: return "floor";
    case EwUn::Ceil: return "ceil";
    case EwUn::Round: return "round";
    case EwUn::Sign: return "sign";
  }
  return "?";
}

const char* red_name(RedKind r) {
  switch (r) {
    case RedKind::Sum: return "sum";
    case RedKind::Mean: return "mean";
    case RedKind::Min: return "min";
    case RedKind::Max: return "max";
    case RedKind::Prod: return "prod";
  }
  return "?";
}

void dump_lexpr_to(const LExpr& e, std::ostream& os) {
  switch (e.kind) {
    case LExpr::Kind::Imm: os << e.imm; break;
    case LExpr::Kind::ScalarVar: os << e.var; break;
    case LExpr::Kind::MatVar: os << e.var << "[.]"; break;
    case LExpr::Kind::Bin:
      os << '(' << bin_name(e.bop) << ' ';
      dump_lexpr_to(*e.a, os);
      os << ' ';
      dump_lexpr_to(*e.b, os);
      os << ')';
      break;
    case LExpr::Kind::Un:
      os << '(' << un_name(e.uop) << ' ';
      dump_lexpr_to(*e.a, os);
      os << ')';
      break;
    case LExpr::Kind::RowsOf: os << "rows(" << e.var << ')'; break;
    case LExpr::Kind::ColsOf: os << "cols(" << e.var << ')'; break;
    case LExpr::Kind::NumelOf: os << "numel(" << e.var << ')'; break;
    case LExpr::Kind::RandScalar: os << "rand()"; break;
    case LExpr::Kind::RankId: os << "rank()"; break;
    case LExpr::Kind::NProcs: os << "nprocs()"; break;
  }
}

void dump_operand(const LOperand& o, std::ostream& os) {
  if (o.is_string) {
    os << '\'' << o.str << '\'';
  } else if (o.is_matrix) {
    os << o.mat;
  } else if (o.scalar) {
    dump_lexpr_to(*o.scalar, os);
  } else {
    os << "<?>";
  }
}

void indent_to(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << "  ";
}

void dump_instrs(const std::vector<LInstrPtr>& body, std::ostream& os,
                 int indent);

void dump_instr(const LInstr& in, std::ostream& os, int indent) {
  indent_to(os, indent);
  auto args = [&](const char* name) {
    os << name << '(';
    for (size_t i = 0; i < in.args.size(); ++i) {
      if (i) os << ", ";
      dump_operand(in.args[i], os);
    }
    os << ')';
  };
  switch (in.op) {
    case LOp::MatMul: os << in.dst << " = "; args("ML_matrix_multiply"); break;
    case LOp::MatVec: os << in.dst << " = "; args("ML_matrix_vector_multiply"); break;
    case LOp::VecMat: os << in.dst << " = "; args("ML_vector_matrix_multiply"); break;
    case LOp::OuterProd: os << in.dst << " = "; args("ML_outer_product"); break;
    case LOp::TransposeOp: os << in.dst << " = "; args("ML_transpose"); break;
    case LOp::DotProd: os << in.sdst << " = "; args("ML_dot"); break;
    case LOp::Norm: os << in.sdst << " = "; args("ML_norm"); break;
    case LOp::Trapz: os << in.sdst << " = "; args("ML_trapz"); break;
    case LOp::Reduce:
      os << in.sdst << " = ML_reduce_" << red_name(in.red) << '(';
      dump_operand(in.args[0], os);
      os << ')';
      break;
    case LOp::Colwise:
      os << in.dst << " = ML_colwise_" << red_name(in.red) << '(';
      dump_operand(in.args[0], os);
      os << ')';
      break;
    case LOp::GetElem: os << in.sdst << " = "; args("ML_broadcast"); break;
    case LOp::SetElem: args("ML_set_element_guarded"); break;
    case LOp::ExtractRowOp: os << in.dst << " = "; args("ML_extract_row"); break;
    case LOp::ExtractColOp: os << in.dst << " = "; args("ML_extract_col"); break;
    case LOp::AssignRowOp: args("ML_assign_row"); break;
    case LOp::AssignColOp: args("ML_assign_col"); break;
    case LOp::SliceVec: os << in.dst << " = "; args("ML_slice"); break;
    case LOp::AssignSliceOp: args("ML_assign_slice"); break;
    case LOp::FillZeros: os << in.dst << " = "; args("ML_zeros"); break;
    case LOp::FillOnes: os << in.dst << " = "; args("ML_ones"); break;
    case LOp::FillEye: os << in.dst << " = "; args("ML_eye"); break;
    case LOp::FillRand: os << in.dst << " = "; args("ML_rand"); break;
    case LOp::FillRange: os << in.dst << " = "; args("ML_range"); break;
    case LOp::FillLinspace: os << in.dst << " = "; args("ML_linspace"); break;
    case LOp::LoadFile: os << in.dst << " = "; args("ML_load"); break;
    case LOp::FromLiteral: {
      os << in.dst << " = ML_literal[";
      for (size_t r = 0; r < in.literal_rows.size(); ++r) {
        if (r) os << "; ";
        for (size_t c = 0; c < in.literal_rows[r].size(); ++c) {
          if (c) os << ", ";
          dump_lexpr_to(*in.literal_rows[r][c], os);
        }
      }
      os << ']';
      break;
    }
    case LOp::CopyMat: os << in.dst << " = "; args("ML_copy"); break;
    case LOp::Elemwise:
      os << "for-each-local " << in.dst << " = ";
      dump_lexpr_to(*in.tree, os);
      break;
    case LOp::ScalarAssign:
      os << in.sdst << " = ";
      dump_lexpr_to(*in.tree, os);
      break;
    case LOp::CallFn: {
      os << '[';
      for (size_t i = 0; i < in.call_dsts.size(); ++i) {
        if (i) os << ", ";
        os << in.call_dsts[i].name;
      }
      os << "] = " << in.callee << '(';
      for (size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        dump_operand(in.args[i], os);
      }
      os << ')';
      break;
    }
    case LOp::Display: args("ML_display"); break;
    case LOp::DispOp: args("ML_disp"); break;
    case LOp::FprintfOp: args("ML_fprintf"); break;
    case LOp::ErrorOp: args("ML_error"); break;
    case LOp::ShapeGuard: args("ML_shape_check"); break;
    case LOp::IfOp:
      os << "if\n";
      for (const LIfArm& arm : in.arms) {
        indent_to(os, indent + 1);
        if (arm.cond) {
          os << "cond ";
          dump_lexpr_to(*arm.cond, os);
          os << '\n';
        } else {
          os << "else\n";
        }
        dump_instrs(arm.body, os, indent + 2);
      }
      indent_to(os, indent);
      os << "end";
      break;
    case LOp::WhileOp:
      os << "while ";
      dump_lexpr_to(*in.cond, os);
      os << '\n';
      dump_instrs(in.body, os, indent + 1);
      indent_to(os, indent);
      os << "end";
      break;
    case LOp::ForOp:
      os << "for " << in.loop_var << " = ";
      dump_lexpr_to(*in.lo, os);
      os << " : ";
      dump_lexpr_to(*in.step, os);
      os << " : ";
      dump_lexpr_to(*in.hi, os);
      os << '\n';
      dump_instrs(in.body, os, indent + 1);
      indent_to(os, indent);
      os << "end";
      break;
    case LOp::BreakOp: os << "break"; break;
    case LOp::ContinueOp: os << "continue"; break;
    case LOp::ReturnOp: os << "return"; break;
  }
  os << '\n';
}

void dump_instrs(const std::vector<LInstrPtr>& body, std::ostream& os,
                 int indent) {
  for (const LInstrPtr& in : body) dump_instr(*in, os, indent);
}

}  // namespace

std::string dump_lexpr(const LExpr& e) {
  std::ostringstream ss;
  dump_lexpr_to(e, ss);
  return ss.str();
}

std::string dump_lir(const LProgram& p) {
  std::ostringstream ss;
  ss << "script:\n";
  dump_instrs(p.script, ss, 1);
  for (const LFunction& fn : p.functions) {
    ss << "function " << fn.mangled << ":\n";
    dump_instrs(fn.body, ss, 1);
  }
  return ss.str();
}

const char* lop_name(LOp op) {
  switch (op) {
    case LOp::MatMul: return "matmul";
    case LOp::MatVec: return "matvec";
    case LOp::VecMat: return "vecmat";
    case LOp::OuterProd: return "outer-product";
    case LOp::TransposeOp: return "transpose";
    case LOp::DotProd: return "dot";
    case LOp::Reduce: return "reduce";
    case LOp::Colwise: return "colwise";
    case LOp::Norm: return "norm";
    case LOp::Trapz: return "trapz";
    case LOp::GetElem: return "get-elem";
    case LOp::SetElem: return "set-elem";
    case LOp::ExtractRowOp: return "extract-row";
    case LOp::ExtractColOp: return "extract-col";
    case LOp::AssignRowOp: return "assign-row";
    case LOp::AssignColOp: return "assign-col";
    case LOp::SliceVec: return "slice";
    case LOp::AssignSliceOp: return "assign-slice";
    case LOp::FillZeros: return "zeros";
    case LOp::FillOnes: return "ones";
    case LOp::FillEye: return "eye";
    case LOp::FillRand: return "rand";
    case LOp::FillRange: return "range";
    case LOp::FillLinspace: return "linspace";
    case LOp::LoadFile: return "load";
    case LOp::FromLiteral: return "matrix-literal";
    case LOp::CopyMat: return "copy";
    case LOp::Elemwise: return "elemwise";
    case LOp::ScalarAssign: return "scalar-assign";
    case LOp::CallFn: return "call";
    case LOp::Display: return "display";
    case LOp::DispOp: return "disp";
    case LOp::FprintfOp: return "fprintf";
    case LOp::ErrorOp: return "error";
    case LOp::ShapeGuard: return "shape-guard";
    case LOp::IfOp: return "if";
    case LOp::WhileOp: return "while";
    case LOp::ForOp: return "for";
    case LOp::BreakOp: return "break";
    case LOp::ContinueOp: return "continue";
    case LOp::ReturnOp: return "return";
  }
  return "unknown";
}

}  // namespace otter::lower
