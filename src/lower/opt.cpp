// LIR optimizer pass pipeline. Every pass preserves three invariants the
// rest of the compiler depends on:
//
//  * the SPMD ranks' lockstep communication schedule changes only by whole
//    run-time calls disappearing (never by a call moving past a point where
//    its operands could differ);
//  * the shared replicated random sequence is untouched — instructions whose
//    trees draw rand are never moved, merged, or deleted;
//  * the verifier's rules still hold on the output (hoisted ML_tmp targets
//    are pre-defined before the guard so E6002's all-paths check passes).
//
// Loop hoists are guarded by the loop's own trip condition, so a zero-trip
// loop performs no hoisted communication and leaves its target untouched —
// identical to the unoptimized program.
#include "lower/opt.hpp"

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace otter::lower {

namespace {

using Set = std::unordered_set<std::string>;

// -- tree / instruction queries (mirrors dse.cpp's local helpers) -------------

bool tree_has_rand(const LExpr& e) {
  if (e.kind == LExpr::Kind::RandScalar) return true;
  if (e.a && tree_has_rand(*e.a)) return true;
  if (e.b && tree_has_rand(*e.b)) return true;
  return false;
}

void tree_vars(const LExpr* e, Set& out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case LExpr::Kind::ScalarVar:
    case LExpr::Kind::MatVar:
    case LExpr::Kind::RowsOf:
    case LExpr::Kind::ColsOf:
    case LExpr::Kind::NumelOf:
      out.insert(e->var);
      break;
    default:
      break;
  }
  tree_vars(e->a.get(), out);
  tree_vars(e->b.get(), out);
}

/// Reads of one instruction, excluding control-flow children (conditions,
/// bounds and nested bodies are handled by the structured walks).
void instr_reads(const LInstr& in, Set& out) {
  for (const LOperand& o : in.args) {
    if (o.is_matrix) out.insert(o.mat);
    tree_vars(o.scalar.get(), out);
  }
  tree_vars(in.tree.get(), out);
  for (const auto& row : in.literal_rows) {
    for (const LExprPtr& e : row) tree_vars(e.get(), out);
  }
}

/// In-place matrix mutations: the destination is read-modify-write.
bool is_rmw(LOp op) {
  switch (op) {
    case LOp::SetElem:
    case LOp::AssignRowOp:
    case LOp::AssignColOp:
    case LOp::AssignSliceOp:
      return true;
    default:
      return false;
  }
}

bool any_tree_has_rand(const LInstr& in) {
  for (const LOperand& o : in.args) {
    if (o.scalar && tree_has_rand(*o.scalar)) return true;
  }
  if (in.tree && tree_has_rand(*in.tree)) return true;
  for (const auto& row : in.literal_rows) {
    for (const LExprPtr& e : row) {
      if (e && tree_has_rand(*e)) return true;
    }
  }
  return false;
}

/// Whether the instruction may be deleted when its results are unread
/// (same whitelist as DSE: pure, and never advances the random sequence).
bool removable(const LInstr& in) {
  switch (in.op) {
    case LOp::MatMul:
    case LOp::MatVec:
    case LOp::VecMat:
    case LOp::OuterProd:
    case LOp::TransposeOp:
    case LOp::DotProd:
    case LOp::Reduce:
    case LOp::Colwise:
    case LOp::Norm:
    case LOp::Trapz:
    case LOp::GetElem:
    case LOp::ExtractRowOp:
    case LOp::ExtractColOp:
    case LOp::SliceVec:
    case LOp::FillZeros:
    case LOp::FillOnes:
    case LOp::FillEye:
    case LOp::FillRange:
    case LOp::FillLinspace:
    case LOp::FromLiteral:
    case LOp::CopyMat:
    case LOp::Elemwise:
    case LOp::ScalarAssign:
      return !any_tree_has_rand(in);
    default:
      return false;
  }
}

/// Pure communication reads: the run-time calls the optimizer may CSE or
/// hoist. The W3207 set minus LoadFile (I/O stays where it was written).
bool is_comm_read(LOp op) {
  switch (op) {
    case LOp::MatMul:
    case LOp::MatVec:
    case LOp::VecMat:
    case LOp::OuterProd:
    case LOp::TransposeOp:
    case LOp::DotProd:
    case LOp::Reduce:
    case LOp::Colwise:
    case LOp::Norm:
    case LOp::Trapz:
    case LOp::GetElem:
    case LOp::ExtractRowOp:
    case LOp::ExtractColOp:
    case LOp::SliceVec:
      return true;
    default:
      return false;
  }
}

bool is_control(LOp op) {
  switch (op) {
    case LOp::IfOp:
    case LOp::WhileOp:
    case LOp::ForOp:
    case LOp::BreakOp:
    case LOp::ContinueOp:
    case LOp::ReturnOp:
      return true;
    default:
      return false;
  }
}

/// Names defined by one instruction (nested bodies excluded).
void instr_defs(const LInstr& in, Set& out) {
  if (!in.dst.empty()) out.insert(in.dst);
  if (!in.sdst.empty()) out.insert(in.sdst);
  for (const LVarDecl& d : in.call_dsts) out.insert(d.name);
  if (!in.loop_var.empty()) out.insert(in.loop_var);
}

/// All names defined anywhere under `body`, nested control flow included.
void collect_defs(const std::vector<LInstrPtr>& body, Set& out) {
  for (const LInstrPtr& ip : body) {
    instr_defs(*ip, out);
    for (const LIfArm& arm : ip->arms) collect_defs(arm.body, out);
    collect_defs(ip->body, out);
  }
}

/// Whether control can leave `body` other than by falling off the end.
/// `top` is true while break/continue would bind to the loop being analyzed;
/// inside a nested loop only `return` still escapes.
bool body_has_jump(const std::vector<LInstrPtr>& body, bool top) {
  for (const LInstrPtr& ip : body) {
    switch (ip->op) {
      case LOp::ReturnOp:
        return true;
      case LOp::BreakOp:
      case LOp::ContinueOp:
        if (top) return true;
        break;
      default:
        break;
    }
    for (const LIfArm& arm : ip->arms) {
      if (body_has_jump(arm.body, top)) return true;
    }
    bool inner_loop = ip->op == LOp::WhileOp || ip->op == LOp::ForOp;
    if (body_has_jump(ip->body, top && !inner_loop)) return true;
  }
  return false;
}

/// Full read set of an instruction including control headers and every
/// nested body (the "does anything in here read `t`" query).
bool reads_name(const LInstr& in, const std::string& t) {
  Set r;
  instr_reads(in, r);
  if (is_rmw(in.op) && !in.dst.empty()) r.insert(in.dst);
  for (const LIfArm& arm : in.arms) tree_vars(arm.cond.get(), r);
  tree_vars(in.cond.get(), r);
  tree_vars(in.lo.get(), r);
  tree_vars(in.step.get(), r);
  tree_vars(in.hi.get(), r);
  if (r.contains(t)) return true;
  for (const LIfArm& arm : in.arms) {
    for (const LInstrPtr& ip : arm.body) {
      if (reads_name(*ip, t)) return true;
    }
  }
  for (const LInstrPtr& ip : in.body) {
    if (reads_name(*ip, t)) return true;
  }
  return false;
}

/// All names read anywhere in a body (recursively), rmw targets included —
/// the "is this definition observable" set for the sweep.
void collect_ever_read(const std::vector<LInstrPtr>& body, Set& out) {
  for (const LInstrPtr& ip : body) {
    const LInstr& in = *ip;
    instr_reads(in, out);
    if (is_rmw(in.op) && !in.dst.empty()) out.insert(in.dst);
    for (const LIfArm& arm : in.arms) {
      tree_vars(arm.cond.get(), out);
      collect_ever_read(arm.body, out);
    }
    tree_vars(in.cond.get(), out);
    tree_vars(in.lo.get(), out);
    tree_vars(in.step.get(), out);
    tree_vars(in.hi.get(), out);
    collect_ever_read(in.body, out);
  }
}

// -- copy propagation ---------------------------------------------------------

/// Forward, per-straight-line-block propagation of CopyMat aliases: a read
/// of the copy becomes a read of the source while both still hold the same
/// value. Control flow clears the alias map (each loop iteration re-executes
/// its copies from the top, so a linear scan of the body is per-iteration
/// sound). A CopyMat that turns into `x = x` after propagation is dropped.
class CopyProp {
 public:
  explicit CopyProp(OptReport& rep) : rep_(rep) {}

  void run(std::vector<LInstrPtr>& body) { walk(body); }

 private:
  std::string resolve(const std::string& n) const {
    auto it = map_.find(n);
    return it == map_.end() ? n : it->second;
  }

  void rewrite_tree(LExpr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case LExpr::Kind::MatVar:
      case LExpr::Kind::RowsOf:
      case LExpr::Kind::ColsOf:
      case LExpr::Kind::NumelOf: {
        std::string r = resolve(e->var);
        if (r != e->var) {
          e->var = r;
          ++rep_.copies_propagated;
        }
        break;
      }
      default:
        break;
    }
    rewrite_tree(e->a.get());
    rewrite_tree(e->b.get());
  }

  void rewrite_reads(LInstr& in) {
    for (LOperand& o : in.args) {
      if (o.is_matrix) {
        std::string r = resolve(o.mat);
        if (r != o.mat) {
          o.mat = r;
          ++rep_.copies_propagated;
        }
      }
      rewrite_tree(o.scalar.get());
    }
    rewrite_tree(in.tree.get());
    for (auto& row : in.literal_rows) {
      for (LExprPtr& e : row) rewrite_tree(e.get());
    }
  }

  /// A definition of `n` ends both aliases *of* n and aliases *to* n.
  void invalidate(const std::string& n) {
    map_.erase(n);
    for (auto it = map_.begin(); it != map_.end();) {
      it = (it->second == n) ? map_.erase(it) : std::next(it);
    }
  }

  void walk(std::vector<LInstrPtr>& body) {
    map_.clear();
    for (size_t i = 0; i < body.size(); ++i) {
      LInstr& in = *body[i];
      if (is_control(in.op)) {
        map_.clear();
        for (LIfArm& arm : in.arms) walk(arm.body);
        if (!in.body.empty()) walk(in.body);
        map_.clear();
        continue;
      }
      rewrite_reads(in);
      if (in.op == LOp::CopyMat && in.args.size() == 1 &&
          in.args[0].is_matrix && in.args[0].mat == in.dst) {
        body.erase(body.begin() + static_cast<ptrdiff_t>(i));
        --i;
        ++rep_.copies_propagated;
        continue;
      }
      Set defs;
      instr_defs(in, defs);
      for (const std::string& d : defs) invalidate(d);
      if (in.op == LOp::CopyMat && !in.dst.empty() && in.args.size() == 1 &&
          in.args[0].is_matrix && in.args[0].mat != in.dst) {
        map_[in.dst] = in.args[0].mat;
      }
    }
    map_.clear();
  }

  std::unordered_map<std::string, std::string> map_;
  OptReport& rep_;
};

// -- communication CSE --------------------------------------------------------

/// Within a straight-line block, a second communication call with the same
/// opcode and operands (none redefined in between, no rand draws) recomputes
/// a value a variable already holds: replace it with an alias. Control flow
/// clears the table.
class CommCse {
 public:
  explicit CommCse(OptReport& rep) : rep_(rep) {}

  void run(std::vector<LInstrPtr>& body) { walk(body); }

 private:
  struct Entry {
    std::string target;
    bool matrix = false;
    Set reads;
  };

  static std::string key_of(const LInstr& in) {
    std::string k = lop_name(in.op);
    k += '|';
    k += std::to_string(static_cast<int>(in.red));
    k += in.linear ? 'L' : '-';
    for (const LOperand& o : in.args) {
      k += '|';
      if (o.is_matrix) {
        k += 'm';
        k += o.mat;
      } else if (o.is_string) {
        k += 's';
        k += o.str;
      } else if (o.scalar) {
        k += 'e';
        k += dump_lexpr(*o.scalar);
      }
    }
    return k;
  }

  void invalidate(const std::string& n) {
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->second.target == n || it->second.reads.contains(n)) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void walk(std::vector<LInstrPtr>& body) {
    table_.clear();
    for (size_t i = 0; i < body.size(); ++i) {
      LInstr& in = *body[i];
      if (is_control(in.op)) {
        table_.clear();
        for (LIfArm& arm : in.arms) walk(arm.body);
        if (!in.body.empty()) walk(in.body);
        table_.clear();
        continue;
      }
      Set defs;
      instr_defs(in, defs);
      bool cseable = is_comm_read(in.op) && !any_tree_has_rand(in) &&
                     (in.dst.empty() != in.sdst.empty());
      if (cseable) {
        std::string key = key_of(in);
        auto it = table_.find(key);
        if (it != table_.end()) {
          const std::string target = it->second.target;
          const bool matrix = it->second.matrix;
          std::string newdef = matrix ? in.dst : in.sdst;
          if (newdef == target) {
            // Recomputing into the same variable: a pure no-op.
            body.erase(body.begin() + static_cast<ptrdiff_t>(i));
            --i;
            ++rep_.cse_removed;
            continue;
          }
          auto repl = std::make_unique<LInstr>(
              matrix ? LOp::CopyMat : LOp::ScalarAssign, in.loc);
          if (matrix) {
            repl->dst = newdef;
            LOperand o;
            o.is_matrix = true;
            o.mat = target;
            repl->args.push_back(std::move(o));
          } else {
            repl->sdst = newdef;
            repl->tree = lsvar(target);
          }
          body[i] = std::move(repl);
          ++rep_.cse_removed;
          invalidate(newdef);
          continue;
        }
        Set reads;
        instr_reads(in, reads);
        for (const std::string& d : defs) invalidate(d);
        bool self = false;
        for (const std::string& d : defs) {
          if (reads.contains(d)) self = true;
        }
        if (!self) {
          Entry e;
          e.target = in.dst.empty() ? in.sdst : in.dst;
          e.matrix = !in.dst.empty();
          e.reads = std::move(reads);
          table_.emplace(std::move(key), std::move(e));
        }
        continue;
      }
      if (is_rmw(in.op) && !in.dst.empty()) defs.insert(in.dst);
      for (const std::string& d : defs) invalidate(d);
    }
    table_.clear();
  }

  std::unordered_map<std::string, Entry> table_;
  OptReport& rep_;
};

// -- element-wise fusion ------------------------------------------------------

/// Fuses `t = <tree1>; …; w = f(t)` into `w = f(<tree1>)` when the consumer
/// is the only instruction in the whole scope that reads t, both are Elemwise
/// in the same straight-line block, and nothing in between redefines t or any
/// producer input. All element-wise operands are aligned by construction, so
/// substituting the producer tree for the MatVar leaves is exact — per local
/// element, reads of index l happen before the write of index l, which is the
/// same in-place rule the single-statement fused loop already relies on.
class Fuser {
 public:
  Fuser(OptReport& rep, std::vector<LInstrPtr>& root, const Set& protect)
      : rep_(rep), root_(root), protect_(protect) {}

  void run() { walk(root_); }

 private:
  static size_t tree_nodes(const LExpr& e) {
    return 1 + (e.a ? tree_nodes(*e.a) : 0) + (e.b ? tree_nodes(*e.b) : 0);
  }

  static size_t count_mat_leaf(const LExpr& e, const std::string& name) {
    size_t n = (e.kind == LExpr::Kind::MatVar && e.var == name) ? 1 : 0;
    if (e.a) n += count_mat_leaf(*e.a, name);
    if (e.b) n += count_mat_leaf(*e.b, name);
    return n;
  }

  /// RowsOf/ColsOf/NumelOf of `name`: a shape query a tree can't replace.
  static bool has_query_of(const LExpr& e, const std::string& name) {
    switch (e.kind) {
      case LExpr::Kind::RowsOf:
      case LExpr::Kind::ColsOf:
      case LExpr::Kind::NumelOf:
        if (e.var == name) return true;
        break;
      default:
        break;
    }
    if (e.a && has_query_of(*e.a, name)) return true;
    if (e.b && has_query_of(*e.b, name)) return true;
    return false;
  }

  static void substitute(LExprPtr& e, const std::string& name,
                         const LExpr& repl) {
    if (!e) return;
    if (e->kind == LExpr::Kind::MatVar && e->var == name) {
      e = clone_lexpr(repl);
      return;
    }
    substitute(e->a, name, repl);
    substitute(e->b, name, repl);
  }

  /// name → instructions (anywhere in the scope) whose read set contains it.
  std::unordered_map<std::string, std::vector<const LInstr*>> build_readers() {
    std::unordered_map<std::string, std::vector<const LInstr*>> readers;
    add_readers(root_, readers);
    return readers;
  }

  static void add_readers(
      const std::vector<LInstrPtr>& body,
      std::unordered_map<std::string, std::vector<const LInstr*>>& readers) {
    for (const LInstrPtr& ip : body) {
      const LInstr& in = *ip;
      Set r;
      instr_reads(in, r);
      if (is_rmw(in.op) && !in.dst.empty()) r.insert(in.dst);
      for (const LIfArm& arm : in.arms) tree_vars(arm.cond.get(), r);
      tree_vars(in.cond.get(), r);
      tree_vars(in.lo.get(), r);
      tree_vars(in.step.get(), r);
      tree_vars(in.hi.get(), r);
      for (const std::string& n : r) readers[n].push_back(&in);
      for (const LIfArm& arm : in.arms) add_readers(arm.body, readers);
      add_readers(in.body, readers);
    }
  }

  void walk(std::vector<LInstrPtr>& body) {
    for (LInstrPtr& ip : body) {
      for (LIfArm& arm : ip->arms) walk(arm.body);
      if (!ip->body.empty()) walk(ip->body);
    }
    fuse_block(body);
  }

  void fuse_block(std::vector<LInstrPtr>& body) {
    bool changed = true;
    while (changed) {
      changed = false;
      auto readers = build_readers();
      for (size_t i = 0; i < body.size() && !changed; ++i) {
        LInstr& prod = *body[i];
        if (prod.op != LOp::Elemwise || prod.dst.empty() || !prod.tree) {
          continue;
        }
        if (any_tree_has_rand(prod) || !prod.tree->has_matrix_leaf()) continue;
        const std::string& t = prod.dst;
        if (protect_.contains(t)) continue;
        auto rit = readers.find(t);
        if (rit == readers.end() || rit->second.size() != 1) continue;
        const LInstr* sole = rit->second.front();
        Set prod_reads;
        tree_vars(prod.tree.get(), prod_reads);
        for (size_t j = i + 1; j < body.size(); ++j) {
          LInstr& cons = *body[j];
          if (is_control(cons.op)) break;
          if (&cons == sole) {
            if (cons.op != LOp::Elemwise || !cons.tree) break;
            if (has_query_of(*cons.tree, t)) break;
            size_t uses = count_mat_leaf(*cons.tree, t);
            if (uses == 0) break;
            size_t pn = tree_nodes(*prod.tree);
            if (uses > 1 && pn > 8) break;  // avoid duplicating big trees
            if (tree_nodes(*cons.tree) + uses * pn > 256) break;
            substitute(cons.tree, t, *prod.tree);
            body.erase(body.begin() + static_cast<ptrdiff_t>(i));
            ++rep_.fused;
            changed = true;
            break;
          }
          Set cdefs;
          instr_defs(cons, cdefs);
          if (cdefs.contains(t)) break;
          bool clobbers = false;
          for (const std::string& d : cdefs) {
            if (prod_reads.contains(d)) {
              clobbers = true;
              break;
            }
          }
          if (clobbers) break;
        }
      }
    }
  }

  OptReport& rep_;
  std::vector<LInstrPtr>& root_;
  const Set& protect_;
};

// -- loop-invariant communication motion --------------------------------------

/// Hoists top-level communication calls whose operands the loop never
/// redefines out of For/While bodies, into an if-guard in front of the loop
/// that re-evaluates the loop's own entry condition. The guard makes the
/// transformation exact for zero-trip loops (no speculative communication,
/// the target variable keeps its pre-loop value); for one or more trips the
/// hoisted call sees exactly the operand values iteration 1 would have seen.
class Licm {
 public:
  explicit Licm(OptReport& rep) : rep_(rep) {}

  void run(std::vector<LInstrPtr>& body) { walk(body); }

 private:
  void walk(std::vector<LInstrPtr>& body) {
    for (size_t i = 0; i < body.size(); ++i) {
      LInstr& in = *body[i];
      for (LIfArm& arm : in.arms) walk(arm.body);
      if (!in.body.empty()) walk(in.body);
      if (in.op == LOp::ForOp || in.op == LOp::WhileOp) {
        i += hoist_from(body, i);
      }
    }
  }

  static void count_defs(const std::vector<LInstrPtr>& body,
                         std::unordered_map<std::string, size_t>& count,
                         Set& rmw_targets) {
    for (const LInstrPtr& ip : body) {
      const LInstr& in = *ip;
      if (is_rmw(in.op) && !in.dst.empty()) rmw_targets.insert(in.dst);
      Set defs;
      instr_defs(in, defs);
      for (const std::string& d : defs) ++count[d];
      for (const LIfArm& arm : in.arms) count_defs(arm.body, count, rmw_targets);
      count_defs(in.body, count, rmw_targets);
    }
  }

  /// Is `t` read by the loop header or by anything at top-level positions
  /// before `p`? Such a read observes iteration N-1's value (or the
  /// pre-loop value in iteration 1), which a hoist would change.
  static bool read_before(const LInstr& loop, size_t p, const std::string& t) {
    Set hdr;
    tree_vars(loop.cond.get(), hdr);
    tree_vars(loop.lo.get(), hdr);
    tree_vars(loop.step.get(), hdr);
    tree_vars(loop.hi.get(), hdr);
    if (hdr.contains(t)) return true;
    for (size_t k = 0; k < p; ++k) {
      if (reads_name(*loop.body[k], t)) return true;
    }
    return false;
  }

  /// Entry condition for the guard: while re-evaluates its own condition;
  /// for uses the sign-exact trip test (step > 0 && lo <= hi) ||
  /// (step < 0 && lo >= hi), which also runs zero trips for step == 0 or
  /// NaN bounds, matching the executor.
  static LExprPtr guard_cond(const LInstr& loop) {
    if (loop.op == LOp::WhileOp) return clone_lexpr(*loop.cond);
    LExprPtr step = loop.step ? clone_lexpr(*loop.step) : limm(1.0);
    LExprPtr step2 = loop.step ? clone_lexpr(*loop.step) : limm(1.0);
    LExprPtr up = lbin(EwBin::And, lbin(EwBin::Gt, std::move(step), limm(0.0)),
                       lbin(EwBin::Le, clone_lexpr(*loop.lo),
                            clone_lexpr(*loop.hi)));
    LExprPtr down =
        lbin(EwBin::And, lbin(EwBin::Lt, std::move(step2), limm(0.0)),
             lbin(EwBin::Ge, clone_lexpr(*loop.lo), clone_lexpr(*loop.hi)));
    return lbin(EwBin::Or, std::move(up), std::move(down));
  }

  static bool is_tmp(const std::string& n) {
    return n.rfind("ML_tmp", 0) == 0;
  }

  /// Returns the number of instructions inserted in front of body[li].
  size_t hoist_from(std::vector<LInstrPtr>& body, size_t li) {
    LInstr& loop = *body[li];
    if (body_has_jump(loop.body, true)) return 0;
    // The guard clones the loop's entry condition: bail if evaluating it a
    // second time would advance the random sequence.
    if (loop.op == LOp::WhileOp) {
      if (!loop.cond || tree_has_rand(*loop.cond)) return 0;
    } else {
      if (!loop.lo || !loop.hi) return 0;
      if (tree_has_rand(*loop.lo) || tree_has_rand(*loop.hi)) return 0;
      if (loop.step && tree_has_rand(*loop.step)) return 0;
    }

    Set defs;
    collect_defs(loop.body, defs);
    if (loop.op == LOp::ForOp && !loop.loop_var.empty()) {
      defs.insert(loop.loop_var);
    }
    std::unordered_map<std::string, size_t> def_count;
    Set rmw_targets;
    count_defs(loop.body, def_count, rmw_targets);

    std::vector<LInstrPtr> hoisted;
    bool grew = true;
    int rounds = 0;
    while (grew && rounds++ < 4) {
      grew = false;
      for (size_t p = 0; p < loop.body.size(); ++p) {
        LInstr& c = *loop.body[p];
        if (!is_comm_read(c.op) || any_tree_has_rand(c)) continue;
        std::string t = c.dst.empty() ? c.sdst : c.dst;
        if (t.empty()) continue;
        Set reads;
        instr_reads(c, reads);
        bool invariant = true;
        for (const std::string& r : reads) {
          if (defs.contains(r)) {
            invariant = false;
            break;
          }
        }
        if (!invariant) continue;
        auto dc = def_count.find(t);
        if (dc == def_count.end() || dc->second != 1) continue;
        if (rmw_targets.contains(t)) continue;
        if (read_before(loop, p, t)) continue;
        rep_.hoists.push_back({c.loc, t, lop_name(c.op)});
        hoisted.push_back(std::move(loop.body[p]));
        loop.body.erase(loop.body.begin() + static_cast<ptrdiff_t>(p));
        defs.erase(t);       // now loop-invariant for later candidates
        def_count.erase(t);
        grew = true;
        --p;
      }
    }
    if (hoisted.empty()) return 0;

    // Pre-define hoisted ML_tmp targets so the verifier's all-paths rule
    // holds; the values are never read when the guard does not fire (the
    // temps' only readers are inside the loop body).
    std::vector<LInstrPtr> inserted;
    for (const LInstrPtr& h : hoisted) {
      if (!h->sdst.empty() && is_tmp(h->sdst)) {
        auto pre = std::make_unique<LInstr>(LOp::ScalarAssign, h->loc);
        pre->sdst = h->sdst;
        pre->tree = limm(0.0);
        inserted.push_back(std::move(pre));
      } else if (!h->dst.empty() && is_tmp(h->dst)) {
        auto pre = std::make_unique<LInstr>(LOp::FillZeros, h->loc);
        pre->dst = h->dst;
        LOperand r;
        r.scalar = limm(1.0);
        LOperand cdim;
        cdim.scalar = limm(1.0);
        pre->args.push_back(std::move(r));
        pre->args.push_back(std::move(cdim));
        inserted.push_back(std::move(pre));
      }
    }
    auto guard = std::make_unique<LInstr>(LOp::IfOp, loop.loc);
    LIfArm arm;
    arm.cond = guard_cond(loop);
    arm.body = std::move(hoisted);
    guard->arms.push_back(std::move(arm));
    inserted.push_back(std::move(guard));

    size_t n = inserted.size();
    body.insert(body.begin() + static_cast<ptrdiff_t>(li),
                std::make_move_iterator(inserted.begin()),
                std::make_move_iterator(inserted.end()));
    return n;
  }

  OptReport& rep_;
};

// -- proof-backed shape-guard elimination -------------------------------------

/// Deletes ShapeGuard instructions the abstract interpreter proved can never
/// fire. The pass is deliberately dumb: it only matches each guard against
/// the proof list by (line, col, builtin) and records what it deleted, so
/// the verifier can later check every deletion against a proof (E6009). The
/// reasoning all lives in analysis/absint.cpp.
class GuardElim {
 public:
  GuardElim(OptReport& rep, const std::vector<GuardProof>& proofs, bool del)
      : rep_(rep), proofs_(proofs), delete_(del) {}

  void run(std::vector<LInstrPtr>& body) { walk(body); }

 private:
  static std::string builtin_of(const LInstr& in) {
    return in.args.size() > 1 && in.args[1].is_string ? in.args[1].str : "";
  }

  bool proven(const LInstr& in) const {
    for (const GuardProof& p : proofs_) {
      if (p.loc.line == in.loc.line && p.loc.col == in.loc.col &&
          p.builtin == builtin_of(in)) {
        return true;
      }
    }
    return false;
  }

  void walk(std::vector<LInstrPtr>& body) {
    for (size_t i = 0; i < body.size(); ++i) {
      LInstr& in = *body[i];
      for (LIfArm& arm : in.arms) walk(arm.body);
      if (!in.body.empty()) walk(in.body);
      if (in.op != LOp::ShapeGuard) continue;
      ++rep_.guards_seen;
      if (delete_ && proven(in)) {
        rep_.guards_eliminated.push_back({in.loc, builtin_of(in)});
        body.erase(body.begin() + static_cast<ptrdiff_t>(i));
        --i;
      }
    }
  }

  OptReport& rep_;
  const std::vector<GuardProof>& proofs_;
  bool delete_;
};

// -- unread-definition sweep --------------------------------------------------

/// Conservative cleanup: removes pure definitions whose target no
/// instruction in the whole scope ever reads (weaker than DSE's positional
/// liveness, so user-visible variables that are merely printed later always
/// survive — printing reads them). Iterated to a fixpoint so alias chains
/// freed by copy propagation unravel completely.
size_t sweep_body(std::vector<LInstrPtr>& body, const Set& reads,
                  const Set& protect) {
  size_t removed = 0;
  for (size_t i = body.size(); i-- > 0;) {
    LInstr& in = *body[i];
    for (LIfArm& arm : in.arms) removed += sweep_body(arm.body, reads, protect);
    removed += sweep_body(in.body, reads, protect);
    bool defines = !in.dst.empty() || !in.sdst.empty();
    if (!defines || !removable(in)) continue;
    if (!in.dst.empty() &&
        (reads.contains(in.dst) || protect.contains(in.dst))) {
      continue;
    }
    if (!in.sdst.empty() &&
        (reads.contains(in.sdst) || protect.contains(in.sdst))) {
      continue;
    }
    body.erase(body.begin() + static_cast<ptrdiff_t>(i));
    ++removed;
  }
  return removed;
}

size_t sweep_scope(std::vector<LInstrPtr>& body, const Set& protect) {
  size_t removed = 0;
  for (int round = 0; round < 8; ++round) {
    Set reads;
    collect_ever_read(body, reads);
    size_t got = sweep_body(body, reads, protect);
    removed += got;
    if (got == 0) break;
  }
  return removed;
}

}  // namespace

OptReport run_opt(LProgram& prog, const OptOptions& opts) {
  OptReport rep;
  if (opts.level <= 0) return rep;
  bool full = opts.level >= 2;
  auto optimize_scope = [&](std::vector<LInstrPtr>& body, const Set& protect) {
    if (opts.copyprop) CopyProp(rep).run(body);
    if (full && opts.cse) CommCse(rep).run(body);
    if (full && opts.fuse) Fuser(rep, body, protect).run();
    if (full && opts.licm) Licm(rep).run(body);
    // Guard elimination runs before the final copy-prop/sweep so a guard
    // whose matrix becomes otherwise-unread frees that definition too.
    GuardElim(rep, opts.guard_proofs, full && opts.guard_elim).run(body);
    if (opts.copyprop) CopyProp(rep).run(body);
    rep.swept += sweep_scope(body, protect);
  };
  Set script_protect;
  optimize_scope(prog.script, script_protect);
  for (LFunction& fn : prog.functions) {
    Set outs;
    for (const LVarDecl& d : fn.outs) outs.insert(d.name);
    optimize_scope(fn.body, outs);
  }
  return rep;
}

}  // namespace otter::lower
