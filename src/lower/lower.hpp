// AST → LIR lowering (paper passes 4, 5 and 6).
#pragma once

#include "frontend/ast.hpp"
#include "lower/lir.hpp"
#include "sema/infer.hpp"
#include "support/budget.hpp"
#include "support/diag.hpp"

namespace otter::lower {

struct LowerOptions {
  /// Run the paper's sixth (peephole) pass: fold run-time-call sequences
  /// such as transpose + multiply + element-read into single ML_dot calls.
  /// Disabled by the peephole ablation benchmark.
  bool peephole = true;
  /// Shared per-compilation resource gate; lowering stops emitting once the
  /// LIR instruction or wall-clock budget is exhausted. May be null.
  BudgetGate* budget = nullptr;
  /// Liveness-driven dead-statement elimination over the lowered IR.
  /// Off by default so golden-LIR tests see every emitted instruction;
  /// otterc enables it for user-facing compiles.
  bool dse = false;
};

/// Lowers the resolved, inferred program into LIR. Reports constructs
/// outside the compiler's subset through diags.
LProgram lower_program(Program& prog, const sema::InferResult& inf,
                       DiagEngine& diags, const LowerOptions& opts = {});

/// The peephole pass in isolation (exposed for tests and the ablation).
void run_peephole(LProgram& prog);

/// Liveness-driven dead-statement elimination in isolation (exposed for
/// tests). Removes pure instructions whose results no later statement or
/// observable output can read. Returns the number of instructions removed.
size_t run_dse(LProgram& prog);

}  // namespace otter::lower
