#include "lower/lower.hpp"

#include <cassert>
#include <optional>
#include <unordered_set>

#include "frontend/builtins.hpp"

namespace otter::lower {

using sema::BaseType;
using sema::RankKind;
using sema::Ty;

namespace {

class Lowerer {
 public:
  Lowerer(Program& prog, const sema::InferResult& inf, DiagEngine& diags,
          const LowerOptions& opts)
      : prog_(prog), inf_(inf), diags_(diags), opts_(opts) {}

  LProgram run() {
    LProgram out;
    types_ = &inf_.script;
    cur_body_ = &out.script;
    for (StmtPtr& s : prog_.script) lower_stmt(*s);
    collect_vars(inf_.script, {}, out.script_vars);

    for (const auto& [key, inst] : inf_.instances) {
      LFunction lf;
      lf.mangled = sanitize(key);
      lf.source_name = inst.fn->name;
      types_ = &inst.types;
      temps_ = 0;  // temp names are per-scope
      extra_locals_.clear();
      cur_body_ = &lf.body;
      for (const StmtPtr& s : inst.fn->body) {
        lower_stmt(const_cast<Stmt&>(*s));
      }
      std::unordered_set<std::string> skip;
      for (size_t i = 0; i < inst.fn->params.size(); ++i) {
        bool mat = i < inst.arg_types.size() && inst.arg_types[i].is_matrix();
        lf.params.push_back({inst.fn->params[i], mat});
        skip.insert(inst.fn->params[i]);
      }
      for (size_t i = 0; i < inst.fn->outs.size(); ++i) {
        bool mat = i < inst.out_types.size() && inst.out_types[i].is_matrix();
        lf.outs.push_back({inst.fn->outs[i], mat});
        skip.insert(inst.fn->outs[i]);
      }
      collect_vars(inst.types, skip, lf.locals);
      out.functions.push_back(std::move(lf));
    }
    types_ = nullptr;
    cur_body_ = nullptr;
    if (opts_.peephole) run_peephole(out);
    if (opts_.dse) run_dse(out);
    return out;
  }

 private:
  // -- helpers ------------------------------------------------------------------

  static std::string sanitize(const std::string& mangled) {
    std::string s = mangled;
    for (char& c : s) {
      if (c == '$') c = '_';
    }
    return "otter_fn_" + s;
  }

  void collect_vars(const sema::ScopeTypes& st,
                    const std::unordered_set<std::string>& skip,
                    std::vector<LVarDecl>& out) {
    std::vector<std::string> names;
    for (const auto& [name, ty] : st.var_class) names.push_back(name);
    std::sort(names.begin(), names.end());
    for (const std::string& n : names) {
      if (skip.contains(n)) continue;
      out.push_back({n, st.var_class.at(n).is_matrix()});
    }
    for (const LVarDecl& t : extra_locals_) {
      if (!skip.contains(t.name)) out.push_back(t);
    }
  }

  void err(const char* code, SourceLoc loc, const std::string& msg) {
    diags_.error(code, loc, msg);
  }

  /// Budget accounting shared by emit() and emit_with(): every appended
  /// instruction counts toward the LIR budget, and the wall clock is
  /// checked on an amortized stride.
  void note_emit(SourceLoc loc) {
    ++instrs_;
    if (opts_.budget == nullptr || budget_reported_) return;
    size_t cap = opts_.budget->limits().max_lir_instrs;
    if (cap > 0 && instrs_ > cap) {
      budget_reported_ = true;
      diags_.error("E0007", loc,
                   "program exceeds the LIR instruction budget (" +
                       std::to_string(cap) + " instructions)");
    } else if (opts_.budget->expired_every(ticks_)) {
      budget_reported_ = true;
      diags_.error("E0004", loc,
                   "compilation exceeded the wall-clock budget during "
                   "lowering");
    }
  }

  LInstr& emit(LOp op, SourceLoc loc = {}) {
    note_emit(loc);
    cur_body_->push_back(std::make_unique<LInstr>(op, loc));
    return *cur_body_->back();
  }

  /// Emits a runtime shape check before a reduction whose operand shape the
  /// inferencer could not prove (graceful degradation): if the degraded
  /// assumption (matrix => column-wise semantics) turns out wrong at run
  /// time, the check aborts with a coded diagnostic instead of letting the
  /// program silently compute the wrong value.
  void maybe_emit_shape_guard(const Expr& e, const std::string& mat) {
    auto it = inf_.guards.find(&e);
    if (it == inf_.guards.end()) return;
    LInstr& g = emit(LOp::ShapeGuard, e.loc);
    g.args.push_back(mat_operand(mat));
    g.args.push_back(string_operand(it->second.builtin));
  }

  /// Builds an instruction via `fill` BEFORE appending it, so that operand
  /// lowering inside `fill` emits its own instructions first (hoisted
  /// subexpressions must precede their consumer).
  template <typename Fill>
  LInstr& emit_with(LOp op, SourceLoc loc, Fill&& fill) {
    note_emit(loc);
    auto in = std::make_unique<LInstr>(op, loc);
    fill(*in);
    cur_body_->push_back(std::move(in));
    return *cur_body_->back();
  }

  std::string fresh_temp(bool is_matrix) {
    std::string name = "ML_tmp" + std::to_string(++temps_);
    extra_locals_.push_back({name, is_matrix});
    return name;
  }

  [[nodiscard]] Ty ty(const Expr& e) const {
    auto it = types_->expr_types.find(&e);
    return it == types_->expr_types.end() ? Ty{} : it->second;
  }

  [[nodiscard]] Ty storage_of(const std::string& name) const {
    auto it = types_->var_class.find(name);
    return it == types_->var_class.end() ? Ty{} : it->second;
  }

  LOperand mat_operand(std::string name) {
    LOperand o;
    o.is_matrix = true;
    o.mat = std::move(name);
    return o;
  }
  LOperand scalar_operand(LExprPtr tree) {
    LOperand o;
    o.scalar = std::move(tree);
    return o;
  }
  LOperand string_operand(std::string s) {
    LOperand o;
    o.is_string = true;
    o.str = std::move(s);
    return o;
  }

  /// Hoists a scalar tree into a named scalar temp unless it is trivial.
  LExprPtr hoist_if_complex(LExprPtr tree, SourceLoc loc) {
    if (tree->kind == LExpr::Kind::Imm ||
        tree->kind == LExpr::Kind::ScalarVar) {
      return tree;
    }
    std::string t = fresh_temp(false);
    LInstr& in = emit(LOp::ScalarAssign, loc);
    in.sdst = t;
    in.tree = std::move(tree);
    return lsvar(t);
  }

  // -- scalar expressions -----------------------------------------------------------

  LExprPtr lower_scalar(const Expr& e) {
    switch (e.kind) {
      case ExprKind::Number:
        if (e.is_imaginary) {
          err("E4001", e.loc, "complex values are not supported by the Otter parallel "
                     "run-time (interpreter only)");
          return limm(0);
        }
        return limm(e.number);
      case ExprKind::String:
        err("E4002", e.loc, "string value used in a numeric context");
        return limm(0);
      case ExprKind::Ident:
        return lower_scalar_ident(e);
      case ExprKind::Unary: {
        if (e.un_op == UnOp::Transpose || e.un_op == UnOp::CTranspose) {
          return lower_scalar(*e.lhs);  // scalar transpose is identity
        }
        LExprPtr a = lower_scalar(*e.lhs);
        if (e.un_op == UnOp::Plus) return a;
        return lun(e.un_op == UnOp::Neg ? EwUn::Neg : EwUn::Not, std::move(a));
      }
      case ExprKind::Binary:
        return lower_scalar_binary(e);
      case ExprKind::Range:
        // Only reachable when inference collapsed the range to one element.
        return lower_scalar(*e.lhs);
      case ExprKind::Call:
        return lower_scalar_call(e);
      case ExprKind::Matrix:
        err("E4003", e.loc, "matrix literal in scalar context");
        return limm(0);
      case ExprKind::Colon:
      case ExprKind::End:
        err("E4004", e.loc, "':'/'end' outside an index");
        return limm(0);
    }
    return limm(0);
  }

  LExprPtr lower_scalar_ident(const Expr& e) {
    if (e.callee == CalleeKind::Variable) {
      if (storage_of(e.name).is_matrix()) {
        // The merged storage is a matrix even though this SSA version is
        // scalar-valued: read element (0, 0).
        std::string t = fresh_temp(false);
        LInstr& in = emit(LOp::GetElem, e.loc);
        in.sdst = t;
        in.args.push_back(mat_operand(e.name));
        in.args.push_back(scalar_operand(limm(0)));
        in.linear = true;
        return lsvar(t);
      }
      return lsvar(e.name);
    }
    if (e.callee == CalleeKind::UserFunction) {
      return lower_call_to_scalar(e);
    }
    // Builtin constants.
    if (e.name == "pi") return limm(3.14159265358979323846);
    if (e.name == "eps") return limm(2.220446049250313e-16);
    if (e.name == "Inf") return limm(std::numeric_limits<double>::infinity());
    if (e.name == "NaN") return limm(std::numeric_limits<double>::quiet_NaN());
    if (e.name == "rand") {
      auto r = std::make_unique<LExpr>();
      r->kind = LExpr::Kind::RandScalar;
      return r;
    }
    if (e.name == "rank") {
      auto r = std::make_unique<LExpr>();
      r->kind = LExpr::Kind::RankId;
      return r;
    }
    if (e.name == "nprocs") {
      auto r = std::make_unique<LExpr>();
      r->kind = LExpr::Kind::NProcs;
      return r;
    }
    if (e.name == "i" || e.name == "j") {
      err("E4001", e.loc, "complex values are not supported by the Otter parallel "
                 "run-time (interpreter only)");
    }
    return limm(0);
  }

  LExprPtr lower_scalar_binary(const Expr& e) {
    EwBin op = EwBin::Add;
    switch (e.bin_op) {
      case BinOp::Add: op = EwBin::Add; break;
      case BinOp::Sub: op = EwBin::Sub; break;
      case BinOp::MatMul:
      case BinOp::ElemMul: op = EwBin::Mul; break;
      case BinOp::MatDiv:
      case BinOp::ElemDiv: op = EwBin::Div; break;
      case BinOp::MatLDiv: {
        return lbin(EwBin::Div, lower_scalar(*e.rhs), lower_scalar(*e.lhs));
      }
      case BinOp::MatPow:
      case BinOp::ElemPow: op = EwBin::Pow; break;
      case BinOp::Lt: op = EwBin::Lt; break;
      case BinOp::Le: op = EwBin::Le; break;
      case BinOp::Gt: op = EwBin::Gt; break;
      case BinOp::Ge: op = EwBin::Ge; break;
      case BinOp::Eq: op = EwBin::Eq; break;
      case BinOp::Ne: op = EwBin::Ne; break;
      case BinOp::And:
      case BinOp::AndAnd: op = EwBin::And; break;
      case BinOp::Or:
      case BinOp::OrOr: op = EwBin::Or; break;
    }
    // A scalar-typed expression may still have matrix-typed children
    // (e.g. x' * y): route through the matrix lowering which yields a
    // scalar via the run-time library.
    if (ty(*e.lhs).is_matrix() || ty(*e.rhs).is_matrix()) {
      return lower_matrix_to_scalar(e);
    }
    return lbin(op, lower_scalar(*e.lhs), lower_scalar(*e.rhs));
  }

  /// Scalar-valued (1x1) binary expression with matrix operands, e.g. the
  /// inner product x' * y: evaluate through the run-time library, then read
  /// element 0 replicated. The peephole pass later folds the transpose +
  /// multiply + read sequence into a single ML_dot call.
  LExprPtr lower_matrix_to_scalar(const Expr& e) {
    std::string m;
    if (e.bin_op == BinOp::MatMul && ty(*e.lhs).is_matrix() &&
        ty(*e.rhs).is_matrix()) {
      std::string a = lower_matrix(*e.lhs);
      std::string b = lower_matrix(*e.rhs);
      m = fresh_temp(true);
      LInstr& in = emit(LOp::MatMul, e.loc);
      in.dst = m;
      in.args.push_back(mat_operand(a));
      in.args.push_back(mat_operand(b));
    } else if (is_elementwise_tree(e)) {
      LExprPtr tree = lbin(ew_bin_of(e.bin_op), build_child(*e.lhs),
                           build_child(*e.rhs));
      m = fresh_temp(true);
      LInstr& in = emit(LOp::Elemwise, e.loc);
      in.dst = m;
      in.tree = std::move(tree);
    } else {
      err("E4005", e.loc, "unsupported scalar expression over matrix operands");
      return limm(0);
    }
    std::string t = fresh_temp(false);
    LInstr& in = emit(LOp::GetElem, e.loc);
    in.sdst = t;
    in.args.push_back(mat_operand(m));
    in.args.push_back(scalar_operand(limm(0)));
    in.linear = true;
    return lsvar(t);
  }

  static EwBin ew_bin_of(BinOp op) {
    switch (op) {
      case BinOp::Add: return EwBin::Add;
      case BinOp::Sub: return EwBin::Sub;
      case BinOp::ElemMul:
      case BinOp::MatMul: return EwBin::Mul;
      case BinOp::ElemDiv:
      case BinOp::MatDiv: return EwBin::Div;
      case BinOp::ElemPow:
      case BinOp::MatPow: return EwBin::Pow;
      case BinOp::Lt: return EwBin::Lt;
      case BinOp::Le: return EwBin::Le;
      case BinOp::Gt: return EwBin::Gt;
      case BinOp::Ge: return EwBin::Ge;
      case BinOp::Eq: return EwBin::Eq;
      case BinOp::Ne: return EwBin::Ne;
      case BinOp::And:
      case BinOp::AndAnd: return EwBin::And;
      default: return EwBin::Or;
    }
  }

  LExprPtr lower_scalar_call(const Expr& e) {
    if (e.callee == CalleeKind::Variable) {
      // Scalar element read a(i) or a(i, j) — ML_broadcast (paper pass 4).
      std::string t = fresh_temp(false);
      emit_with(LOp::GetElem, e.loc, [&](LInstr& in) {
        in.sdst = t;
        in.args.push_back(mat_operand(e.name));
        if (e.args.size() == 1) {
          in.linear = true;
          in.args.push_back(
              scalar_operand(lower_index_scalar(*e.args[0], e.name, 0, 1)));
        } else {
          in.args.push_back(
              scalar_operand(lower_index_scalar(*e.args[0], e.name, 0, 2)));
          in.args.push_back(
              scalar_operand(lower_index_scalar(*e.args[1], e.name, 1, 2)));
        }
      });
      return lsvar(t);
    }
    if (e.callee == CalleeKind::UserFunction) return lower_call_to_scalar(e);

    // Builtins with scalar results.
    const BuiltinInfo* b = find_builtin(e.name);
    if (!b) return limm(0);
    auto arg_scalar = [&](size_t i) { return lower_scalar(*e.args[i]); };
    switch (b->id) {
      case Builtin::Size: {
        std::string base = lower_matrix(*e.args[0]);
        if (e.args.size() == 2) {
          // size(m, d): d must be the constant 1 or 2.
          if (auto d = const_of(*e.args[1])) {
            return lquery(*d == 1.0 ? LExpr::Kind::RowsOf : LExpr::Kind::ColsOf,
                          base);
          }
          err("E4006", e.loc, "size(m, d) requires a constant dimension");
          return limm(0);
        }
        return lquery(LExpr::Kind::RowsOf, base);
      }
      case Builtin::Length: {
        std::string base = lower_matrix(*e.args[0]);
        return lbin(EwBin::Max, lquery(LExpr::Kind::RowsOf, base),
                    lquery(LExpr::Kind::ColsOf, base));
      }
      case Builtin::Numel:
        return lquery(LExpr::Kind::NumelOf, lower_matrix(*e.args[0]));
      case Builtin::Sum:
      case Builtin::Mean:
      case Builtin::Prod:
      case Builtin::MinFn:
      case Builtin::MaxFn: {
        if (e.args.size() == 2) {
          // Scalar two-arg min/max.
          return lbin(b->id == Builtin::MinFn ? EwBin::Min : EwBin::Max,
                      arg_scalar(0), arg_scalar(1));
        }
        if (ty(*e.args[0]).is_scalar()) return arg_scalar(0);
        std::string m = lower_matrix(*e.args[0]);
        maybe_emit_shape_guard(e, m);
        std::string t = fresh_temp(false);
        LInstr& in = emit(LOp::Reduce, e.loc);
        in.sdst = t;
        in.args.push_back(mat_operand(m));
        switch (b->id) {
          case Builtin::Sum: in.red = RedKind::Sum; break;
          case Builtin::Mean: in.red = RedKind::Mean; break;
          case Builtin::Prod: in.red = RedKind::Prod; break;
          case Builtin::MinFn: in.red = RedKind::Min; break;
          default: in.red = RedKind::Max; break;
        }
        return lsvar(t);
      }
      case Builtin::Dot: {
        std::string a = lower_matrix(*e.args[0]);
        std::string c = lower_matrix(*e.args[1]);
        std::string t = fresh_temp(false);
        LInstr& in = emit(LOp::DotProd, e.loc);
        in.sdst = t;
        in.args.push_back(mat_operand(a));
        in.args.push_back(mat_operand(c));
        return lsvar(t);
      }
      case Builtin::Norm: {
        if (ty(*e.args[0]).is_scalar()) {
          return lun(EwUn::Abs, arg_scalar(0));
        }
        std::string a = lower_matrix(*e.args[0]);
        std::string t = fresh_temp(false);
        LInstr& in = emit(LOp::Norm, e.loc);
        in.sdst = t;
        in.args.push_back(mat_operand(a));
        return lsvar(t);
      }
      case Builtin::Trapz: {
        std::vector<LOperand> ops;
        ops.push_back(mat_operand(lower_matrix(*e.args[0])));
        if (e.args.size() == 2) {
          ops.push_back(mat_operand(lower_matrix(*e.args[1])));
        }
        std::string t = fresh_temp(false);
        LInstr& in = emit(LOp::Trapz, e.loc);
        in.sdst = t;
        in.args = std::move(ops);
        return lsvar(t);
      }
      case Builtin::Abs: return lun(EwUn::Abs, arg_scalar(0));
      case Builtin::Sqrt: return lun(EwUn::Sqrt, arg_scalar(0));
      case Builtin::Exp: return lun(EwUn::Exp, arg_scalar(0));
      case Builtin::Log: return lun(EwUn::Log, arg_scalar(0));
      case Builtin::Sin: return lun(EwUn::Sin, arg_scalar(0));
      case Builtin::Cos: return lun(EwUn::Cos, arg_scalar(0));
      case Builtin::Tan: return lun(EwUn::Tan, arg_scalar(0));
      case Builtin::Floor: return lun(EwUn::Floor, arg_scalar(0));
      case Builtin::Ceil: return lun(EwUn::Ceil, arg_scalar(0));
      case Builtin::Round: return lun(EwUn::Round, arg_scalar(0));
      case Builtin::Sign: return lun(EwUn::Sign, arg_scalar(0));
      case Builtin::Mod: return lbin(EwBin::Mod, arg_scalar(0), arg_scalar(1));
      case Builtin::Rem: return lbin(EwBin::Rem, arg_scalar(0), arg_scalar(1));
      case Builtin::Real:
      case Builtin::Conj: return arg_scalar(0);
      case Builtin::Imag: { arg_scalar(0); return limm(0); }
      case Builtin::Rand: {
        auto r = std::make_unique<LExpr>();
        r->kind = LExpr::Kind::RandScalar;
        return r;
      }
      case Builtin::RankId: {
        auto r = std::make_unique<LExpr>();
        r->kind = LExpr::Kind::RankId;
        return r;
      }
      case Builtin::NProcs: {
        auto r = std::make_unique<LExpr>();
        r->kind = LExpr::Kind::NProcs;
        return r;
      }
      default:
        err("E4007", e.loc, "builtin '" + e.name + "' is not supported in this "
                   "context by the Otter compiler");
        return limm(0);
    }
  }

  LExprPtr lower_call_to_scalar(const Expr& e) {
    std::vector<std::string> dsts = lower_user_call(e, 1);
    return lsvar(dsts.at(0));
  }

  /// Lowers an index expression to a 0-based scalar tree. `dim` selects the
  /// extent for 'end' (0 = rows / linear, 1 = cols).
  LExprPtr lower_index_scalar(const Expr& e, const std::string& base,
                              int dim, int n_indices) {
    LExprPtr one_based = lower_index_expr(e, base, dim, n_indices);
    return lbin(EwBin::Sub, std::move(one_based), limm(1));
  }

  /// 1-based index tree with 'end' substituted by the right extent.
  LExprPtr lower_index_expr(const Expr& e, const std::string& base, int dim,
                            int n_indices) {
    if (e.kind == ExprKind::End) {
      if (n_indices == 1) return lquery(LExpr::Kind::NumelOf, base);
      return lquery(dim == 0 ? LExpr::Kind::RowsOf : LExpr::Kind::ColsOf, base);
    }
    if (e.kind == ExprKind::Binary) {
      // Allow arithmetic around 'end' (end-1 etc.).
      const Expr* l = e.lhs.get();
      const Expr* r = e.rhs.get();
      bool lend = contains_end(*l);
      bool rend = contains_end(*r);
      if (lend || rend) {
        LExprPtr a = lower_index_expr(*l, base, dim, n_indices);
        LExprPtr b = lower_index_expr(*r, base, dim, n_indices);
        EwBin op = EwBin::Add;
        switch (e.bin_op) {
          case BinOp::Add: op = EwBin::Add; break;
          case BinOp::Sub: op = EwBin::Sub; break;
          case BinOp::MatMul:
          case BinOp::ElemMul: op = EwBin::Mul; break;
          case BinOp::MatDiv:
          case BinOp::ElemDiv: op = EwBin::Div; break;
          default:
            err("E4008", e.loc, "unsupported arithmetic around 'end'");
            break;
        }
        return lbin(op, std::move(a), std::move(b));
      }
    }
    return lower_scalar(e);
  }

  static bool contains_end(const Expr& e) {
    if (e.kind == ExprKind::End) return true;
    if (e.lhs && contains_end(*e.lhs)) return true;
    if (e.rhs && contains_end(*e.rhs)) return true;
    if (e.step && contains_end(*e.step)) return true;
    return false;
  }

  std::optional<double> const_of(const Expr& e) {
    if (e.kind == ExprKind::Number && !e.is_imaginary) return e.number;
    if (e.kind == ExprKind::Unary && e.un_op == UnOp::Neg) {
      if (auto v = const_of(*e.lhs)) return -*v;
    }
    return std::nullopt;
  }

  // -- matrix expressions -------------------------------------------------------------

  /// Lowers a matrix-valued expression, returning the variable holding it.
  std::string lower_matrix(const Expr& e, const std::string& dst_hint = {}) {
    // Scalar-valued but needed as a matrix (storage class mismatch).
    if (ty(e).is_scalar() && !(e.kind == ExprKind::Ident &&
                               storage_of(e.name).is_matrix())) {
      LExprPtr tree = lower_scalar(e);
      std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
      LInstr& in = emit(LOp::FromLiteral, e.loc);
      in.dst = dst;
      in.literal_rows.push_back({});
      in.literal_rows.back().push_back(std::move(tree));
      return dst;
    }

    switch (e.kind) {
      case ExprKind::Ident:
        if (e.callee == CalleeKind::Variable) {
          if (dst_hint.empty() || dst_hint == e.name) return e.name;
          LInstr& in = emit(LOp::CopyMat, e.loc);
          in.dst = dst_hint;
          in.args.push_back(mat_operand(e.name));
          return dst_hint;
        }
        if (e.callee == CalleeKind::UserFunction) {
          std::string t = lower_user_call(e, 1).at(0);
          if (dst_hint.empty()) return t;
          LInstr& in = emit(LOp::CopyMat, e.loc);
          in.dst = dst_hint;
          in.args.push_back(mat_operand(t));
          return dst_hint;
        }
        err("E4009", e.loc, "unsupported matrix-valued name '" + e.name + "'");
        return fresh_temp(true);
      case ExprKind::Unary:
      case ExprKind::Binary: {
        // Element-wise tree if every matrix node is alignment-safe.
        if (is_elementwise_tree(e)) {
          LExprPtr tree = build_ew_tree(e);
          std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
          LInstr& in = emit(LOp::Elemwise, e.loc);
          in.dst = dst;
          in.tree = std::move(tree);
          return dst;
        }
        return lower_matrix_op(e, dst_hint);
      }
      case ExprKind::Range: {
        std::vector<LOperand> ops;
        ops.push_back(scalar_operand(lower_scalar(*e.lhs)));
        ops.push_back(scalar_operand(e.step ? lower_scalar(*e.step) : limm(1)));
        ops.push_back(scalar_operand(lower_scalar(*e.rhs)));
        std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
        LInstr& in = emit(LOp::FillRange, e.loc);
        in.dst = dst;
        in.args = std::move(ops);
        return dst;
      }
      case ExprKind::Call:
        return lower_matrix_call(e, dst_hint);
      case ExprKind::Matrix: {
        std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
        LInstr& in = emit_with(LOp::FromLiteral, e.loc, [&](LInstr& in) {
        in.dst = dst;
        for (const auto& row : e.rows) {
          std::vector<LExprPtr> lrow;
          for (const ExprPtr& el : row) {
            if (!ty(*el).is_scalar()) {
              err("E4010", el->loc, "matrix blocks inside literals are not supported "
                           "by the Otter compiler (use explicit assignment)");
              lrow.push_back(limm(0));
            } else {
              lrow.push_back(lower_scalar(*el));
            }
          }
          in.literal_rows.push_back(std::move(lrow));
        }
        });
        (void)in;
        return dst;
      }
      default:
        err("E4011", e.loc, "expression is not supported in matrix context");
        return fresh_temp(true);
    }
  }

  /// True when the whole subtree is element-wise over aligned operands
  /// (paper: ops needing no communication become local for loops).
  bool is_elementwise_tree(const Expr& e) {
    if (ty(e).is_scalar()) return true;  // scalar subtree: broadcast leaf
    switch (e.kind) {
      case ExprKind::Ident:
        return e.callee == CalleeKind::Variable;
      case ExprKind::Unary:
        return e.un_op != UnOp::Transpose && e.un_op != UnOp::CTranspose;
      case ExprKind::Binary:
        switch (e.bin_op) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::ElemMul:
          case BinOp::ElemDiv:
          case BinOp::ElemPow:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::And:
          case BinOp::Or:
            return true;
          case BinOp::MatMul:
          case BinOp::MatDiv:
          case BinOp::MatLDiv:
            // Scalar-matrix products are element-wise.
            return ty(*e.lhs).is_scalar() || ty(*e.rhs).is_scalar();
          default:
            return false;
        }
      case ExprKind::Call: {
        if (e.callee != CalleeKind::Builtin) return false;
        const BuiltinInfo* b = find_builtin(e.name);
        return b != nullptr && b->elementwise;
      }
      default:
        return false;
    }
  }

  /// Child of an element-wise tree: recurse when the child is itself
  /// element-wise; otherwise hoist it to a matrix temporary (run-time call)
  /// and reference it as an aligned leaf.
  LExprPtr build_child(const Expr& e) {
    if (ty(e).is_scalar()) return hoist_if_complex(lower_scalar(e), e.loc);
    if (is_elementwise_tree(e) && e.kind != ExprKind::Call) {
      return build_ew_tree(e);
    }
    if (e.kind == ExprKind::Call && e.callee == CalleeKind::Builtin &&
        is_elementwise_tree(e)) {
      return build_ew_tree(e);
    }
    return lmvar(lower_matrix(e));
  }

  LExprPtr build_ew_tree(const Expr& e) {
    if (ty(e).is_scalar()) {
      return hoist_if_complex(lower_scalar(e), e.loc);
    }
    switch (e.kind) {
      case ExprKind::Ident:
        return lmvar(e.name);
      case ExprKind::Unary: {
        EwUn op = e.un_op == UnOp::Neg ? EwUn::Neg : EwUn::Not;
        if (e.un_op == UnOp::Plus) return build_child(*e.lhs);
        return lun(op, build_child(*e.lhs));
      }
      case ExprKind::Binary: {
        EwBin op;
        switch (e.bin_op) {
          case BinOp::Add: op = EwBin::Add; break;
          case BinOp::Sub: op = EwBin::Sub; break;
          case BinOp::ElemMul:
          case BinOp::MatMul: op = EwBin::Mul; break;
          case BinOp::ElemDiv:
          case BinOp::MatDiv: op = EwBin::Div; break;
          case BinOp::MatLDiv:
            return lbin(EwBin::Div, build_child(*e.rhs), build_child(*e.lhs));
          case BinOp::ElemPow: op = EwBin::Pow; break;
          case BinOp::Lt: op = EwBin::Lt; break;
          case BinOp::Le: op = EwBin::Le; break;
          case BinOp::Gt: op = EwBin::Gt; break;
          case BinOp::Ge: op = EwBin::Ge; break;
          case BinOp::Eq: op = EwBin::Eq; break;
          case BinOp::Ne: op = EwBin::Ne; break;
          case BinOp::And: op = EwBin::And; break;
          case BinOp::Or: op = EwBin::Or; break;
          default: op = EwBin::Add; break;
        }
        return lbin(op, build_child(*e.lhs), build_child(*e.rhs));
      }
      case ExprKind::Call: {
        const BuiltinInfo* b = find_builtin(e.name);
        EwUn op;
        switch (b->id) {
          case Builtin::Abs: op = EwUn::Abs; break;
          case Builtin::Sqrt: op = EwUn::Sqrt; break;
          case Builtin::Exp: op = EwUn::Exp; break;
          case Builtin::Log: op = EwUn::Log; break;
          case Builtin::Sin: op = EwUn::Sin; break;
          case Builtin::Cos: op = EwUn::Cos; break;
          case Builtin::Tan: op = EwUn::Tan; break;
          case Builtin::Floor: op = EwUn::Floor; break;
          case Builtin::Ceil: op = EwUn::Ceil; break;
          case Builtin::Round: op = EwUn::Round; break;
          case Builtin::Sign: op = EwUn::Sign; break;
          case Builtin::Mod:
            return lbin(EwBin::Mod, build_child(*e.args[0]),
                        build_child(*e.args[1]));
          case Builtin::Rem:
            return lbin(EwBin::Rem, build_child(*e.args[0]),
                        build_child(*e.args[1]));
          case Builtin::Real:
          case Builtin::Conj:
            return build_child(*e.args[0]);
          default:
            err("E4012", e.loc, "builtin '" + e.name + "' inside an element-wise "
                       "expression is not supported");
            return limm(0);
        }
        return lun(op, build_child(*e.args[0]));
      }
      default:
        return lmvar(lower_matrix(e));
    }
  }

  /// Non-element-wise matrix operators (communication): hoisted calls.
  std::string lower_matrix_op(const Expr& e, const std::string& dst_hint) {
    std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
    if (e.kind == ExprKind::Unary) {
      // Transpose.
      std::string src = lower_matrix(*e.lhs);
      LInstr& in = emit(LOp::TransposeOp, e.loc);
      in.dst = dst;
      in.args.push_back(mat_operand(src));
      return dst;
    }
    // Binary matrix multiply (the only non-element-wise binary left).
    if (e.bin_op != BinOp::MatMul) {
      err("E4013", e.loc, std::string("operator '") + bin_op_name(e.bin_op) +
                     "' on matrices is not supported by the Otter compiler");
      return dst;
    }
    Ty lt = ty(*e.lhs);
    Ty rt_ = ty(*e.rhs);
    std::string a = lower_matrix(*e.lhs);
    std::string b = lower_matrix(*e.rhs);
    LOp op = LOp::MatMul;
    if (lt.cols == 1 && rt_.rows == 1) {
      op = LOp::OuterProd;  // column * row
    } else if (rt_.cols == 1) {
      op = LOp::MatVec;  // matrix * column vector
    } else if (lt.rows == 1) {
      op = LOp::VecMat;  // row vector * matrix
    }
    LInstr& in = emit(op, e.loc);
    in.dst = dst;
    in.args.push_back(mat_operand(a));
    in.args.push_back(mat_operand(b));
    return dst;
  }

  std::string lower_matrix_call(const Expr& e, const std::string& dst_hint) {
    if (e.callee == CalleeKind::Variable) {
      return lower_matrix_index_read(e, dst_hint);
    }
    if (e.callee == CalleeKind::UserFunction) {
      std::string t = lower_user_call(e, 1).at(0);
      if (dst_hint.empty()) return t;
      LInstr& in = emit(LOp::CopyMat, e.loc);
      in.dst = dst_hint;
      in.args.push_back(mat_operand(t));
      return dst_hint;
    }
    const BuiltinInfo* b = find_builtin(e.name);
    std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
    auto sarg = [&](size_t i) { return scalar_operand(lower_scalar(*e.args[i])); };
    switch (b->id) {
      case Builtin::Zeros:
      case Builtin::Ones:
      case Builtin::Eye:
      case Builtin::Rand: {
        LOp op = b->id == Builtin::Zeros  ? LOp::FillZeros
                 : b->id == Builtin::Ones ? LOp::FillOnes
                 : b->id == Builtin::Eye  ? LOp::FillEye
                                          : LOp::FillRand;
        emit_with(op, e.loc, [&](LInstr& in) {
          in.dst = dst;
          in.args.push_back(sarg(0));
          if (e.args.size() == 2) {
            in.args.push_back(sarg(1));
          } else {
            in.args.push_back(scalar_operand(lower_scalar(*e.args[0])));
          }
        });
        return dst;
      }
      case Builtin::Linspace: {
        emit_with(LOp::FillLinspace, e.loc, [&](LInstr& in) {
          in.dst = dst;
          in.args.push_back(sarg(0));
          in.args.push_back(sarg(1));
          in.args.push_back(e.args.size() == 3 ? sarg(2)
                                               : scalar_operand(limm(100)));
        });
        return dst;
      }
      case Builtin::Sum:
      case Builtin::Mean:
      case Builtin::MinFn:
      case Builtin::MaxFn: {
        if (e.args.size() == 2) {
          // Element-wise two-arg min/max over matrices.
          LExprPtr tree =
              lbin(b->id == Builtin::MinFn ? EwBin::Min : EwBin::Max,
                   build_child(*e.args[0]), build_child(*e.args[1]));
          LInstr& in = emit(LOp::Elemwise, e.loc);
          in.dst = dst;
          in.tree = std::move(tree);
          return dst;
        }
        // Column-wise reduction of a matrix producing a row vector.
        std::string src = lower_matrix(*e.args[0]);
        maybe_emit_shape_guard(e, src);
        LInstr& in = emit(LOp::Colwise, e.loc);
        in.dst = dst;
        in.args.push_back(mat_operand(src));
        switch (b->id) {
          case Builtin::Sum: in.red = RedKind::Sum; break;
          case Builtin::Mean: in.red = RedKind::Mean; break;
          case Builtin::MinFn: in.red = RedKind::Min; break;
          default: in.red = RedKind::Max; break;
        }
        return dst;
      }
      case Builtin::Load: {
        LInstr& in = emit(LOp::LoadFile, e.loc);
        in.dst = dst;
        in.args.push_back(string_operand(e.args[0]->name));
        return dst;
      }
      case Builtin::Size: {
        std::string base = lower_matrix(*e.args[0]);
        LInstr& in = emit(LOp::FromLiteral, e.loc);
        in.dst = dst;
        std::vector<LExprPtr> row;
        row.push_back(lquery(LExpr::Kind::RowsOf, base));
        row.push_back(lquery(LExpr::Kind::ColsOf, base));
        in.literal_rows.push_back(std::move(row));
        return dst;
      }
      default: {
        if (b->elementwise) {
          LExprPtr tree = build_ew_tree(e);
          LInstr& in = emit(LOp::Elemwise, e.loc);
          in.dst = dst;
          in.tree = std::move(tree);
          return dst;
        }
        err("E4014", e.loc, "builtin '" + e.name + "' producing a matrix is not "
                   "supported by the Otter compiler");
        return dst;
      }
    }
  }

  /// Matrix-valued indexing read: slices, rows, columns.
  std::string lower_matrix_index_read(const Expr& e, const std::string& dst_hint) {
    std::string dst = dst_hint.empty() ? fresh_temp(true) : dst_hint;
    const std::string& base = e.name;
    if (e.args.size() == 1) {
      const Expr& ix = *e.args[0];
      if (ix.kind == ExprKind::Colon) {
        err("E4015", e.loc, "a(:) reshape is not supported by the Otter compiler");
        return dst;
      }
      if (ix.kind == ExprKind::Range && !ix.step) {
        emit_with(LOp::SliceVec, e.loc, [&](LInstr& in) {
          in.dst = dst;
          in.args.push_back(mat_operand(base));
          in.args.push_back(
              scalar_operand(lower_index_scalar(*ix.lhs, base, 0, 1)));
          in.args.push_back(
              scalar_operand(lower_index_scalar(*ix.rhs, base, 0, 1)));
        });
        return dst;
      }
      err("E4016", e.loc, "general vector-subscript indexing is not supported by the "
                 "Otter compiler (only contiguous ranges)");
      return dst;
    }
    // Two indices: row / column extraction.
    const Expr& i0 = *e.args[0];
    const Expr& i1 = *e.args[1];
    if (i0.kind == ExprKind::Colon && i1.kind != ExprKind::Colon) {
      emit_with(LOp::ExtractColOp, e.loc, [&](LInstr& in) {
        in.dst = dst;
        in.args.push_back(mat_operand(base));
        in.args.push_back(scalar_operand(lower_index_scalar(i1, base, 1, 2)));
      });
      return dst;
    }
    if (i1.kind == ExprKind::Colon && i0.kind != ExprKind::Colon) {
      emit_with(LOp::ExtractRowOp, e.loc, [&](LInstr& in) {
        in.dst = dst;
        in.args.push_back(mat_operand(base));
        in.args.push_back(scalar_operand(lower_index_scalar(i0, base, 0, 2)));
      });
      return dst;
    }
    err("E4017", e.loc, "submatrix indexing is not supported by the Otter compiler "
               "(only a(i,:), a(:,j), and contiguous vector ranges)");
    return dst;
  }

  /// Lowers a user call; returns names of destination variables.
  std::vector<std::string> lower_user_call(const Expr& e, size_t nargout) {
    auto iit = inf_.call_instance.find(&e);
    if (iit == inf_.call_instance.end()) {
      err("E4018", e.loc, "internal: no inferred instance for call to '" + e.name + "'");
      return {fresh_temp(false)};
    }
    const sema::FnInstance& inst = inf_.instances.at(iit->second);
    std::vector<LOperand> call_args;
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (ty(*e.args[i]).is_matrix()) {
        call_args.push_back(mat_operand(lower_matrix(*e.args[i])));
      } else {
        call_args.push_back(scalar_operand(lower_scalar(*e.args[i])));
      }
    }
    LInstr& in = emit(LOp::CallFn, e.loc);
    in.callee = sanitize(iit->second);
    in.args = std::move(call_args);
    std::vector<std::string> dsts;
    for (size_t i = 0; i < std::max(nargout, size_t{1}) &&
                       i < inst.out_types.size();
         ++i) {
      bool mat = inst.out_types[i].is_matrix();
      std::string t = fresh_temp(mat);
      in.call_dsts.push_back({t, mat});
      dsts.push_back(t);
    }
    return dsts;
  }

  // -- conditions -------------------------------------------------------------------

  LExprPtr lower_condition(const Expr& e) {
    if (ty(e).is_scalar()) return lower_scalar(e);
    // Matrix condition: true iff every element is nonzero.
    LExprPtr elem_tree;
    if (is_elementwise_tree(e)) {
      elem_tree = lbin(EwBin::Ne, build_ew_tree(e), limm(0));
    } else {
      elem_tree = lbin(EwBin::Ne, lmvar(lower_matrix(e)), limm(0));
    }
    std::string nz = fresh_temp(true);
    LInstr& ew = emit(LOp::Elemwise, e.loc);
    ew.dst = nz;
    ew.tree = std::move(elem_tree);
    std::string t = fresh_temp(false);
    LInstr& red = emit(LOp::Reduce, e.loc);
    red.sdst = t;
    red.red = RedKind::Min;
    red.args.push_back(mat_operand(nz));
    return lsvar(t);
  }

  // -- statements -------------------------------------------------------------------

  void lower_stmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::ExprStmt: {
        // Void builtin statements (I/O) lower to dedicated instructions.
        if (s.expr->kind == ExprKind::Call &&
            s.expr->callee == CalleeKind::Builtin) {
          const BuiltinInfo* b = find_builtin(s.expr->name);
          if (b && b->n_outs == 0) {
            lower_void_builtin(*s.expr, *b);
            return;
          }
        }
        lower_assign_to("ans", {}, *s.expr, s.loc);
        if (s.display) display_var("ans", s.loc);
        return;
      }
      case StmtKind::Assign:
        lower_assign(s);
        return;
      case StmtKind::If: {
        LInstr& in = emit(LOp::IfOp, s.loc);
        std::vector<LInstrPtr>* saved = cur_body_;
        // Conditions are evaluated in the enclosing body *before* the if in
        // paper-style code; hoist each arm's condition computation there.
        // For chained elseif this is a simplification: all conditions are
        // evaluated up front (side-effect-free in the Otter subset).
        for (IfArm& arm : s.arms) {
          LIfArm larm;
          if (arm.cond) {
            cur_body_ = saved;
            // Remove the If we already appended? Conditions must be emitted
            // before the IfOp: emit into a scratch list then splice.
            larm.cond = lower_condition_hoisted(*arm.cond, in);
          }
          larm.body = lower_block(arm.body);
          in.arms.push_back(std::move(larm));
        }
        cur_body_ = saved;
        return;
      }
      case StmtKind::While: {
        // while c … end  =>  while (1) { <cond instrs>; if (!c) break; … }
        auto in = std::make_unique<LInstr>(LOp::WhileOp, s.loc);
        in->cond = limm(1);
        std::vector<LInstrPtr>* saved = cur_body_;
        std::vector<LInstrPtr> body;
        cur_body_ = &body;
        LExprPtr c = lower_condition(*s.expr);
        {
          auto brk = std::make_unique<LInstr>(LOp::IfOp, s.loc);
          LIfArm arm;
          arm.cond = lun(EwUn::Not, std::move(c));
          arm.body.push_back(std::make_unique<LInstr>(LOp::BreakOp, s.loc));
          brk->arms.push_back(std::move(arm));
          body.push_back(std::move(brk));
        }
        ++loop_depth_;
        for (StmtPtr& b : s.body) lower_stmt(*b);
        --loop_depth_;
        cur_body_ = saved;
        in->body = std::move(body);
        cur_body_->push_back(std::move(in));
        return;
      }
      case StmtKind::For: {
        if (s.expr->kind != ExprKind::Range) {
          err("E4019", s.loc, "the Otter compiler only supports for loops over ranges");
          return;
        }
        auto in = std::make_unique<LInstr>(LOp::ForOp, s.loc);
        in->loop_var = s.loop_var;
        in->lo = hoist_if_complex(lower_scalar(*s.expr->lhs), s.loc);
        in->step = s.expr->step
                       ? hoist_if_complex(lower_scalar(*s.expr->step), s.loc)
                       : limm(1);
        in->hi = hoist_if_complex(lower_scalar(*s.expr->rhs), s.loc);
        std::vector<LInstrPtr>* saved = cur_body_;
        std::vector<LInstrPtr> body;
        cur_body_ = &body;
        ++loop_depth_;
        for (StmtPtr& b : s.body) lower_stmt(*b);
        --loop_depth_;
        cur_body_ = saved;
        in->body = std::move(body);
        cur_body_->push_back(std::move(in));
        return;
      }
      case StmtKind::Break:
        if (loop_depth_ == 0) {
          err("E4030", s.loc, "'break' outside of a loop");
          return;
        }
        emit(LOp::BreakOp, s.loc);
        return;
      case StmtKind::Continue:
        if (loop_depth_ == 0) {
          err("E4030", s.loc, "'continue' outside of a loop");
          return;
        }
        emit(LOp::ContinueOp, s.loc);
        return;
      case StmtKind::Return:
        emit(LOp::ReturnOp, s.loc);
        return;
      case StmtKind::Global:
        err("E4020", s.loc, "'global' is not supported by the Otter compiler");
        return;
    }
  }

  /// Hoists a condition's computation before `anchor` (the IfOp just
  /// emitted at the end of cur_body_).
  LExprPtr lower_condition_hoisted(const Expr& e, LInstr& anchor) {
    // Emit condition instrs into a scratch buffer, then splice before anchor.
    std::vector<LInstrPtr> scratch;
    std::vector<LInstrPtr>* saved = cur_body_;
    cur_body_ = &scratch;
    LExprPtr c = lower_condition(e);
    cur_body_ = saved;
    if (!scratch.empty()) {
      // Insert before the anchor (last element of cur_body_).
      auto it = cur_body_->end();
      --it;  // points at anchor
      assert(it->get() == &anchor);
      (void)anchor;
      cur_body_->insert(it, std::make_move_iterator(scratch.begin()),
                        std::make_move_iterator(scratch.end()));
    }
    return c;
  }

  std::vector<LInstrPtr> lower_block(std::vector<StmtPtr>& body) {
    std::vector<LInstrPtr> out;
    std::vector<LInstrPtr>* saved = cur_body_;
    cur_body_ = &out;
    for (StmtPtr& s : body) lower_stmt(*s);
    cur_body_ = saved;
    return out;
  }

  void lower_void_builtin(const Expr& e, const BuiltinInfo& b) {
    auto operand_of = [&](const Expr& a) -> LOperand {
      if (a.kind == ExprKind::String) return string_operand(a.name);
      if (ty(a).is_matrix()) return mat_operand(lower_matrix(a));
      return scalar_operand(lower_scalar(a));
    };
    switch (b.id) {
      case Builtin::Disp: {
        LOperand arg = operand_of(*e.args[0]);
        LInstr& in = emit(LOp::DispOp, e.loc);
        in.args.push_back(std::move(arg));
        return;
      }
      case Builtin::Fprintf: {
        std::vector<LOperand> fargs;
        for (const ExprPtr& a : e.args) fargs.push_back(operand_of(*a));
        if (fargs.empty() || !fargs[0].is_string) {
          err("E4021", e.loc, "fprintf requires a literal format string");
        }
        LInstr& in = emit(LOp::FprintfOp, e.loc);
        in.args = std::move(fargs);
        return;
      }
      case Builtin::ErrorFn: {
        LOperand arg;
        bool have = !e.args.empty();
        if (have) arg = operand_of(*e.args[0]);
        LInstr& in = emit(LOp::ErrorOp, e.loc);
        if (have) in.args.push_back(std::move(arg));
        return;
      }
      default:
        err("E4022", e.loc, "builtin '" + e.name + "' is not supported as a statement");
    }
  }

  void display_var(const std::string& name, SourceLoc loc) {
    LInstr& in = emit(LOp::Display, loc);
    in.args.push_back(string_operand(name));
    if (storage_of(name).is_matrix()) {
      in.args.push_back(mat_operand(name));
    } else {
      in.args.push_back(scalar_operand(lsvar(name)));
    }
  }

  void lower_assign(Stmt& s) {
    // Multi-assign from a call.
    if (s.targets.size() > 1) {
      if (s.expr->kind != ExprKind::Call) {
        err("E4023", s.loc, "multiple assignment requires a function call");
        return;
      }
      if (s.expr->callee == CalleeKind::Builtin && s.expr->name == "size") {
        // [r, c] = size(m).
        std::string base = lower_matrix(*s.expr->args[0]);
        const char* kinds[2] = {"rows", "cols"};
        (void)kinds;
        for (size_t i = 0; i < s.targets.size() && i < 2; ++i) {
          LInstr& in = emit(LOp::ScalarAssign, s.loc);
          in.sdst = s.targets[i].name;
          in.tree = lquery(i == 0 ? LExpr::Kind::RowsOf : LExpr::Kind::ColsOf,
                           base);
        }
        return;
      }
      if (s.expr->callee != CalleeKind::UserFunction) {
        err("E4024", s.loc, "multi-output builtins other than size are not supported");
        return;
      }
      std::vector<std::string> dsts = lower_user_call(*s.expr, s.targets.size());
      for (size_t i = 0; i < s.targets.size() && i < dsts.size(); ++i) {
        copy_into_target(s.targets[i], dsts[i], s.loc);
      }
      if (s.display) {
        for (const LValue& t : s.targets) display_var(t.name, s.loc);
      }
      return;
    }

    const LValue& t = s.targets[0];
    if (t.indices.empty()) {
      lower_assign_to(t.name, {}, *s.expr, s.loc);
    } else {
      lower_indexed_assign(t, *s.expr, s.loc);
    }
    if (s.display) display_var(t.name, s.loc);
  }

  void copy_into_target(const LValue& t, const std::string& src,
                        SourceLoc loc) {
    if (!t.indices.empty()) {
      err("E4025", loc, "indexed targets in multi-assignment are not supported");
      return;
    }
    if (storage_of(t.name).is_matrix()) {
      LInstr& in = emit(LOp::CopyMat, loc);
      in.dst = t.name;
      in.args.push_back(mat_operand(src));
    } else {
      LInstr& in = emit(LOp::ScalarAssign, loc);
      in.sdst = t.name;
      in.tree = lsvar(src);
    }
  }

  /// name = expr (whole-variable assignment).
  void lower_assign_to(const std::string& name, const std::string&,
                       const Expr& rhs, SourceLoc loc) {
    Ty storage = storage_of(name);
    if (storage.is_matrix()) {
      lower_matrix(rhs, name);
    } else {
      LExprPtr tree = lower_scalar(rhs);
      LInstr& in = emit(LOp::ScalarAssign, loc);
      in.sdst = name;
      in.tree = std::move(tree);
    }
  }

  /// Indexed assignment (paper pass 5: owner-computes guards).
  void lower_indexed_assign(const LValue& t, const Expr& rhs, SourceLoc loc) {
    const std::string& base = t.name;
    if (!storage_of(base).is_matrix()) {
      err("E4026", loc, "internal: indexed write into scalar storage '" + base + "'");
      return;
    }
    // Row/column/slice writes take a vector rhs.
    if (t.indices.size() == 2) {
      const Expr& i0 = *t.indices[0];
      const Expr& i1 = *t.indices[1];
      if (i0.kind == ExprKind::Colon && i1.kind != ExprKind::Colon) {
        emit_with(LOp::AssignColOp, loc, [&](LInstr& in) {
          in.dst = base;
          in.args.push_back(scalar_operand(lower_index_scalar(i1, base, 1, 2)));
          in.args.push_back(mat_operand(lower_matrix(rhs)));
        });
        return;
      }
      if (i1.kind == ExprKind::Colon && i0.kind != ExprKind::Colon) {
        emit_with(LOp::AssignRowOp, loc, [&](LInstr& in) {
          in.dst = base;
          in.args.push_back(scalar_operand(lower_index_scalar(i0, base, 0, 2)));
          in.args.push_back(mat_operand(lower_matrix(rhs)));
        });
        return;
      }
      if (i0.kind == ExprKind::Colon && i1.kind == ExprKind::Colon) {
        err("E4027", loc, "a(:,:) assignment is not supported");
        return;
      }
      // Scalar element write with owner guard.
      emit_with(LOp::SetElem, loc, [&](LInstr& in) {
        in.dst = base;
        in.args.push_back(scalar_operand(lower_index_scalar(i0, base, 0, 2)));
        in.args.push_back(scalar_operand(lower_index_scalar(i1, base, 1, 2)));
        in.args.push_back(scalar_operand(lower_scalar(rhs)));
      });
      return;
    }
    // One index.
    const Expr& ix = *t.indices[0];
    if (ix.kind == ExprKind::Range && !ix.step) {
      emit_with(LOp::AssignSliceOp, loc, [&](LInstr& in) {
        in.dst = base;
        in.args.push_back(
            scalar_operand(lower_index_scalar(*ix.lhs, base, 0, 1)));
        in.args.push_back(
            scalar_operand(lower_index_scalar(*ix.rhs, base, 0, 1)));
        in.args.push_back(mat_operand(lower_matrix(rhs)));
      });
      return;
    }
    if (ix.kind == ExprKind::Colon) {
      err("E4028", loc, "a(:) assignment is not supported by the Otter compiler");
      return;
    }
    if (!ty(rhs).is_scalar()) {
      err("E4029", loc, "vector-subscript assignment is not supported by the Otter "
               "compiler (only contiguous ranges)");
      return;
    }
    emit_with(LOp::SetElem, loc, [&](LInstr& in) {
      in.dst = base;
      in.linear = true;
      in.args.push_back(scalar_operand(lower_index_scalar(ix, base, 0, 1)));
      in.args.push_back(scalar_operand(lower_scalar(rhs)));
    });
    return;
  }

  Program& prog_;
  const sema::InferResult& inf_;
  DiagEngine& diags_;
  const LowerOptions& opts_;
  const sema::ScopeTypes* types_ = nullptr;
  std::vector<LInstrPtr>* cur_body_ = nullptr;
  std::vector<LVarDecl> extra_locals_;
  int loop_depth_ = 0;  // break/continue are only legal inside a loop
  int temps_ = 0;
  size_t instrs_ = 0;       // LIR instructions emitted (budget E0007)
  size_t ticks_ = 0;        // amortised wall-clock check counter
  bool budget_reported_ = false;
};

}  // namespace

LProgram lower_program(Program& prog, const sema::InferResult& inf,
                       DiagEngine& diags, const LowerOptions& opts) {
  Lowerer l(prog, inf, diags, opts);
  return l.run();
}

}  // namespace otter::lower
