// Peephole pass — the paper's sixth compiler pass.
//
// "The sixth pass of the compiler performs peephole optimizations, looking
//  for ways in which a sequence of run-time library calls can be replaced by
//  a single call."
//
// Patterns:
//  P1  t = v';  m = t * y;  s = m(0)      =>  s = ML_dot(v, y)
//      (the inner-product idiom x'*y: one allreduce instead of a transpose
//       redistribution, a multiply, and an element broadcast)
//  P2  t = v';  d = ML_vector_matrix_multiply(t, A)
//                                          =>  d = ML_vector_matrix_multiply(v, A)
//      (run-time vector ops are orientation-agnostic: drop the transpose)
//  P3  t = v';  d = ML_matrix_vector_multiply(A, t)
//                                          =>  d = ML_matrix_vector_multiply(A, v)
// Each pattern fires only when the transposed temporary has no other use.
#include <unordered_map>

#include "lower/lower.hpp"

namespace otter::lower {

namespace {

void count_tree(const LExpr& e,
                std::unordered_map<std::string, int>& uses) {
  if (e.kind == LExpr::Kind::MatVar || e.kind == LExpr::Kind::ScalarVar ||
      e.kind == LExpr::Kind::RowsOf || e.kind == LExpr::Kind::ColsOf ||
      e.kind == LExpr::Kind::NumelOf) {
    uses[e.var]++;
  }
  if (e.a) count_tree(*e.a, uses);
  if (e.b) count_tree(*e.b, uses);
}

void count_uses(const std::vector<LInstrPtr>& body,
                std::unordered_map<std::string, int>& uses) {
  for (const LInstrPtr& in : body) {
    for (const LOperand& o : in->args) {
      if (o.is_matrix) uses[o.mat]++;
      if (o.scalar) count_tree(*o.scalar, uses);
    }
    if (in->tree) count_tree(*in->tree, uses);
    if (in->cond) count_tree(*in->cond, uses);
    if (in->lo) count_tree(*in->lo, uses);
    if (in->step) count_tree(*in->step, uses);
    if (in->hi) count_tree(*in->hi, uses);
    for (const auto& row : in->literal_rows) {
      for (const LExprPtr& e : row) count_tree(*e, uses);
    }
    for (const LIfArm& arm : in->arms) {
      if (arm.cond) count_tree(*arm.cond, uses);
      count_uses(arm.body, uses);
    }
    count_uses(in->body, uses);
  }
}

bool is_temp(const std::string& name) {
  return name.rfind("ML_tmp", 0) == 0;
}

bool tree_is_zero(const LExpr& e) {
  return e.kind == LExpr::Kind::Imm && e.imm == 0.0;
}

/// The earlier of two source locations (an invalid location always loses),
/// so a fused instruction reports at the first original statement it
/// replaces and lint/verifier findings stay anchored to user code.
SourceLoc earliest_loc(SourceLoc a, SourceLoc b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  if (b.line < a.line || (b.line == a.line && b.col < a.col)) return b;
  return a;
}

/// Applies the patterns to one instruction list; recurses into control flow.
void peephole_body(std::vector<LInstrPtr>& body,
                   const std::unordered_map<std::string, int>& uses) {
  for (size_t i = 0; i < body.size(); ++i) {
    LInstr& in = *body[i];
    for (LIfArm& arm : in.arms) peephole_body(arm.body, uses);
    peephole_body(in.body, uses);

    if (in.op != LOp::TransposeOp) continue;
    if (!is_temp(in.dst)) continue;
    const std::string t = in.dst;
    const std::string v = in.args[0].mat;
    auto uit = uses.find(t);
    int t_uses = uit == uses.end() ? 0 : uit->second;
    if (t_uses != 1 || i + 1 >= body.size()) continue;
    LInstr& next = *body[i + 1];

    // P1: t = v'; m = t * y; s = m(0)  =>  s = dot(v, y).
    if ((next.op == LOp::MatVec || next.op == LOp::MatMul ||
         next.op == LOp::VecMat) &&
        next.args.size() == 2 && next.args[0].is_matrix &&
        next.args[0].mat == t && is_temp(next.dst) && i + 2 < body.size()) {
      LInstr& third = *body[i + 2];
      auto mit = uses.find(next.dst);
      int m_uses = mit == uses.end() ? 0 : mit->second;
      if (third.op == LOp::GetElem && third.linear && m_uses == 1 &&
          third.args[0].is_matrix && third.args[0].mat == next.dst &&
          third.args[1].scalar && tree_is_zero(*third.args[1].scalar)) {
        auto dot = std::make_unique<LInstr>(
            LOp::DotProd, earliest_loc(earliest_loc(in.loc, next.loc), third.loc));
        dot->sdst = third.sdst;
        dot->args.push_back({});
        dot->args[0].is_matrix = true;
        dot->args[0].mat = v;
        dot->args.push_back({});
        dot->args[1].is_matrix = true;
        dot->args[1].mat = next.args[1].mat;
        body[i] = std::move(dot);
        body.erase(body.begin() + static_cast<long>(i) + 1,
                   body.begin() + static_cast<long>(i) + 3);
        continue;
      }
    }

    // P2 / P3: drop the transpose feeding an orientation-agnostic op.
    if (next.op == LOp::VecMat && next.args[0].is_matrix &&
        next.args[0].mat == t) {
      next.args[0].mat = v;
      next.loc = earliest_loc(next.loc, in.loc);
      body.erase(body.begin() + static_cast<long>(i));
      --i;
      continue;
    }
    if (next.op == LOp::MatVec && next.args[1].is_matrix &&
        next.args[1].mat == t) {
      next.args[1].mat = v;
      next.loc = earliest_loc(next.loc, in.loc);
      body.erase(body.begin() + static_cast<long>(i));
      --i;
      continue;
    }
    if (next.op == LOp::DotProd &&
        ((next.args[0].is_matrix && next.args[0].mat == t) ||
         (next.args[1].is_matrix && next.args[1].mat == t))) {
      if (next.args[0].mat == t) next.args[0].mat = v;
      if (next.args[1].mat == t) next.args[1].mat = v;
      next.loc = earliest_loc(next.loc, in.loc);
      body.erase(body.begin() + static_cast<long>(i));
      --i;
      continue;
    }
  }
}

}  // namespace

void run_peephole(LProgram& prog) {
  {
    std::unordered_map<std::string, int> uses;
    count_uses(prog.script, uses);
    peephole_body(prog.script, uses);
  }
  for (LFunction& fn : prog.functions) {
    std::unordered_map<std::string, int> uses;
    count_uses(fn.body, uses);
    peephole_body(fn.body, uses);
  }
}

}  // namespace otter::lower
