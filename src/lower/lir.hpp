// Statement-level IR produced by expression rewriting (paper pass 4).
//
// "The compiler must modify the AST to bring these terms and subexpressions
//  [that involve interprocessor communication] to the statement level, where
//  they can be translated into calls to the run-time library. After this has
//  been done, some element-wise matrix operations may remain … for loops
//  must be inserted to perform these operations one element at a time."
//
// LIR statements are either run-time-library calls (communication), fused
// element-wise loops over aligned local storage, replicated scalar
// computation, owner-guarded element writes (pass 5), or structured control
// flow. The direct executor interprets LIR against the run-time library; the
// C backend pretty-prints it as SPMD C code. Temporaries are named ML_tmpN,
// matching the paper's generated-code examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rtlib/dmatrix.hpp"
#include "sema/infer.hpp"

namespace otter::lower {

using rt::EwBin;
using rt::EwUn;

// -- expression trees -----------------------------------------------------------

/// A pure expression tree over already-computed variables. Scalar trees are
/// evaluated replicated on every rank; trees with MatVar leaves are evaluated
/// per local element inside a fused loop (every MatVar is aligned).
struct LExpr;
using LExprPtr = std::unique_ptr<LExpr>;

struct LExpr {
  enum class Kind {
    Imm,        // numeric constant
    ScalarVar,  // replicated double variable
    MatVar,     // aligned matrix operand (element-wise context only)
    Bin,        // EwBin over children
    Un,         // EwUn over child a
    RowsOf,     // rows(var)  — local shape queries, no communication
    ColsOf,     // cols(var)
    NumelOf,    // numel(var)
    RandScalar, // replicated scalar rand draw (advances the shared sequence)
    RankId,     // this rank's id (the one per-rank-divergent leaf)
    NProcs,     // number of ranks (replicated, identical everywhere)
  };
  Kind kind = Kind::Imm;
  double imm = 0.0;
  std::string var;
  EwBin bop = EwBin::Add;
  EwUn uop = EwUn::Neg;
  LExprPtr a, b;

  [[nodiscard]] bool has_matrix_leaf() const {
    if (kind == Kind::MatVar) return true;
    if (a && a->has_matrix_leaf()) return true;
    if (b && b->has_matrix_leaf()) return true;
    return false;
  }
};

LExprPtr limm(double v);
LExprPtr lsvar(std::string name);
LExprPtr lmvar(std::string name);
LExprPtr lbin(EwBin op, LExprPtr a, LExprPtr b);
LExprPtr lun(EwUn op, LExprPtr a);
LExprPtr lquery(LExpr::Kind k, std::string var);
LExprPtr clone_lexpr(const LExpr& e);

// -- instructions ----------------------------------------------------------------

struct LInstr;
using LInstrPtr = std::unique_ptr<LInstr>;

enum class LOp {
  // Run-time library calls (communication) — paper pass 4 hoists these.
  MatMul,        // dst = ML_matrix_multiply(a, b)
  MatVec,        // dst = ML_matrix_vector_multiply(a, x)
  VecMat,        // dst = ML_vector_matrix_multiply(x, a)
  OuterProd,     // dst = ML_outer_product(col, row)
  TransposeOp,   // dst = ML_transpose(a)
  DotProd,       // sdst = ML_dot(a, b)              (peephole result)
  Reduce,        // sdst = ML_reduce_{sum,min,max,prod,mean}(a)
  Colwise,       // dst = ML_colwise_{sum,mean,min,max}(a)
  Norm,          // sdst = ML_norm(a)
  Trapz,         // sdst = ML_trapz(a) / ML_trapz_xy(a, b)
  GetElem,       // sdst = ML_broadcast(a, i, j)      (paper's remote read)
  SetElem,       // if (ML_owner(dst,i,j)) store      (paper pass 5 guard)
  ExtractRowOp,  // dst = row i of a
  ExtractColOp,  // dst = column j of a
  AssignRowOp,   // row i of dst = vector a
  AssignColOp,   // column j of dst = vector a
  SliceVec,      // dst = a(lo..hi)
  AssignSliceOp, // dst(lo..hi) = a
  // Constructors.
  FillZeros, FillOnes, FillEye, FillRand, FillRange, FillLinspace,
  LoadFile,      // dst = ML_load(path) — rank 0 reads and broadcasts
  FromLiteral,   // dst = replicated-evaluated literal rows (small)
  CopyMat,       // dst = a (matrix copy / rename)
  // Local compute.
  Elemwise,      // dst[l] = tree(l) for each local element (fused loop)
  ScalarAssign,  // sdst = scalar tree (replicated)
  // Calls & I/O.
  CallFn,        // [dsts] = fn_instance(args)
  Display,       // rank 0 prints "name =\n<value>"
  DispOp,        // disp(operand)
  FprintfOp,     // fprintf(fmt, operands…)
  ErrorOp,       // abort with message
  ShapeGuard,    // validate a degraded inference assumption at run time:
                 // args[0] matrix, args[1] the builtin name; aborts with a
                 // coded E5003 RtError when the shape assumption is wrong
  // Structured control flow.
  IfOp, WhileOp, ForOp, BreakOp, ContinueOp, ReturnOp,
};

/// Which reduction/colwise flavour a Reduce/Colwise instruction performs.
enum class RedKind : uint8_t { Sum, Mean, Min, Max, Prod };

/// One operand: either a matrix variable name or a scalar expression tree.
struct LOperand {
  bool is_matrix = false;
  std::string mat;    // matrix variable name
  LExprPtr scalar;    // scalar tree (owned)
  std::string str;    // string literal (Fprintf/Disp/Error)
  bool is_string = false;
};

/// Variable declaration for a scope: every name is either a replicated
/// scalar double or a distributed matrix.
struct LVarDecl {
  std::string name;
  bool is_matrix = false;
};

struct LIfArm {
  LExprPtr cond;  // scalar tree; null for else
  std::vector<LInstrPtr> body;
};

struct LInstr {
  LOp op;
  SourceLoc loc;

  std::string dst;             // matrix destination variable
  std::string sdst;            // scalar destination variable
  std::vector<LOperand> args;  // operands in op-specific order

  RedKind red = RedKind::Sum;  // Reduce / Colwise
  bool linear = false;         // GetElem/SetElem with one (linear) index
  // CallFn.
  std::string callee;
  std::vector<LVarDecl> call_dsts;
  // FromLiteral: rows of scalar trees.
  std::vector<std::vector<LExprPtr>> literal_rows;
  // Elemwise: the fused per-element tree.
  LExprPtr tree;
  // Control flow.
  std::vector<LIfArm> arms;          // IfOp
  LExprPtr cond;                     // WhileOp
  std::string loop_var;              // ForOp (scalar)
  LExprPtr lo, step, hi;             // ForOp bounds
  std::vector<LInstrPtr> body;       // WhileOp / ForOp

  explicit LInstr(LOp o, SourceLoc l = {}) : op(o), loc(l) {}
};

struct LFunction {
  std::string mangled;        // instance name (doubles as C symbol)
  std::string source_name;    // original MATLAB name
  std::vector<LVarDecl> params;
  std::vector<LVarDecl> outs;
  std::vector<LVarDecl> locals;  // excluding params/outs
  std::vector<LInstrPtr> body;
};

struct LProgram {
  std::vector<LVarDecl> script_vars;
  std::vector<LInstrPtr> script;
  std::vector<LFunction> functions;  // one per inferred instance
};

/// Human-readable dump for golden tests (one instruction per line).
std::string dump_lir(const LProgram& p);
std::string dump_lexpr(const LExpr& e);

/// Short mnemonic for an opcode ("matmul", "get-elem", …) for diagnostics.
const char* lop_name(LOp op);

}  // namespace otter::lower
