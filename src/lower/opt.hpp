// LIR optimizer (between lowering and execution/codegen).
//
// The paper's performance model says communication volume dominates, so the
// passes target run-time-library calls: loop-invariant communication is
// hoisted out of loops (the fix for what lint's W3207 only reports),
// duplicate communication calls in a block are merged, CopyMat chains are
// propagated away, and chains of element-wise statements whose intermediate
// is dead afterwards are fused into one local loop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lower/lir.hpp"

namespace otter::lower {

/// One shape guard the abstract interpreter proved redundant. The optimizer
/// matches proofs to ShapeGuard instructions by source position + builtin
/// name; it never decides redundancy itself (lower must not depend on
/// analysis, so the proof arrives as plain data).
struct GuardProof {
  SourceLoc loc;        ///< location of the guarded reduction call
  std::string builtin;  ///< builtin name carried by the guard ("sum", ...)
};

/// Optimizer configuration. Levels: 0 disables everything, 1 enables copy
/// propagation and the unread-definition sweep, 2 (the compiler default)
/// adds element-wise fusion, communication CSE, communication LICM, and
/// proof-backed shape-guard elimination.
struct OptOptions {
  int level = 2;
  bool fuse = true;      ///< cross-statement element-wise fusion (level >= 2)
  bool licm = true;      ///< hoist loop-invariant communication (level >= 2)
  bool cse = true;       ///< merge duplicate communication calls (level >= 2)
  bool copyprop = true;  ///< propagate through CopyMat chains (level >= 1)
  bool guard_elim = true;  ///< delete proven ShapeGuards (level >= 2)
  /// Guards the abstract interpreter proved can never fire (see
  /// analysis/absint.hpp). Only guards matching an entry here are deleted.
  std::vector<GuardProof> guard_proofs;
};

/// What the optimizer did: counters for tests/benches, plus one record per
/// hoisted communication op so the driver can cross-link W3207 findings
/// ("the warning is gone because the compiler performed the hoist").
struct OptReport {
  struct Hoist {
    SourceLoc loc;       ///< location of the hoisted instruction
    std::string target;  ///< variable the hoisted op defines
    std::string op;      ///< lop_name() of the hoisted op
  };
  std::vector<Hoist> hoists;
  size_t fused = 0;              ///< producer Elemwise folded into consumers
  size_t cse_removed = 0;        ///< duplicate communication calls replaced
  size_t copies_propagated = 0;  ///< reads redirected through CopyMat sources
  size_t swept = 0;              ///< unread pure definitions removed
  size_t guards_seen = 0;        ///< ShapeGuard instructions in the input LIR
  /// Guards deleted because an absint proof matched; the verifier
  /// cross-checks each entry against the proof list (E6009).
  std::vector<GuardProof> guards_eliminated;

  [[nodiscard]] size_t total() const {
    return hoists.size() + fused + cse_removed + copies_propagated + swept +
           guards_eliminated.size();
  }
};

/// Runs the pass pipeline over `prog` in place:
///   copy-prop → comm CSE → elemwise fusion → comm LICM → copy-prop → sweep.
/// Output re-verifies: hoists are wrapped in a trip-count guard so zero-trip
/// loops keep their semantics, and hoisted ML_tmp targets are pre-defined so
/// the verifier's all-paths rule (E6002) still holds.
OptReport run_opt(LProgram& prog, const OptOptions& opts);

}  // namespace otter::lower
