#include "support/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace otter::snap {

namespace fs = std::filesystem;

namespace {

// File layout:
//   8-byte magic "OTRSNAP\x01"
//   sections until EOF: u32 tag | u64 payload_len | payload | u32 crc(payload)
// Required section order: HEADER, RANK x nranks (ascending), OUTPUT, END.
constexpr std::array<char, 8> kMagic = {'O', 'T', 'R', 'S',
                                        'N', 'A', 'P', '\x01'};
constexpr uint32_t kSecHeader = 0x48445221;  // "HDR!"
constexpr uint32_t kSecRank = 0x524e4b21;    // "RNK!"
constexpr uint32_t kSecOutput = 0x4f555421;  // "OUT!"
constexpr uint32_t kSecEnd = 0x454e4421;     // "END!"

// Hard cap on any single section payload; a corrupt length field must not
// trigger a multi-gigabyte allocation before the CRC gets a chance to veto.
constexpr uint64_t kMaxSection = 1ull << 32;

[[noreturn]] void bad(const std::string& what, const std::string& path) {
  throw SnapshotError("corrupt checkpoint: " + what +
                      (path.empty() ? "" : " in '" + path + "'"));
}

struct CrcTable {
  std::array<uint32_t, 256> t{};
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};

const CrcTable& crc_table() {
  static const CrcTable table;
  return table;
}

void append_u32(std::vector<std::byte>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

void append_u64(std::vector<std::byte>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

void append_section(std::vector<std::byte>& out, uint32_t tag,
                    const std::vector<std::byte>& payload) {
  append_u32(out, tag);
  append_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  append_u32(out, crc32(payload.data(), payload.size()));
}

std::string gen_filename(uint64_t generation) {
  return "gen-" + std::to_string(generation) + ".ckpt";
}

/// Parses "gen-<N>.ckpt" -> N; nullopt for anything else.
std::optional<uint64_t> parse_gen(const std::string& name) {
  if (name.size() < 10 || name.rfind("gen-", 0) != 0 ||
      name.substr(name.size() - 5) != ".ckpt")
    return std::nullopt;
  uint64_t n = 0;
  std::string digits = name.substr(4, name.size() - 9);
  if (digits.empty()) return std::nullopt;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

/// Writes `data` to `path` via tmp + atomic rename. Throws on I/O failure.
void write_atomic(const fs::path& path, const std::vector<std::byte>& data) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw SnapshotError("cannot open '" + tmp.string() + "' for write");
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    f.flush();
    if (!f)
      throw SnapshotError("short write to checkpoint '" + tmp.string() + "'");
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw SnapshotError("cannot rename checkpoint into place: '" +
                        path.string() + "': " + ec.message());
}

std::optional<std::vector<std::byte>> read_all(const fs::path& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return std::nullopt;
  auto n = static_cast<size_t>(f.tellg());
  std::vector<std::byte> buf(n);
  f.seekg(0);
  f.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(n));
  if (!f) return std::nullopt;
  return buf;
}

/// Reads the MANIFEST; returns the checkpoint filename it points at, or
/// nullopt when absent/corrupt. Format: "otter-checkpoint v1\n", a
/// "file=<name>\n" line, and a trailing "crc=<hex of the lines above>\n".
std::optional<std::string> read_manifest(const fs::path& dir) {
  auto data = read_all(dir / "MANIFEST");
  if (!data) return std::nullopt;
  std::string text(reinterpret_cast<const char*>(data->data()), data->size());
  auto crc_at = text.rfind("crc=");
  if (crc_at == std::string::npos || crc_at == 0) return std::nullopt;
  uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_at, "crc=%x", &want) != 1)
    return std::nullopt;
  if (crc32(text.data(), crc_at) != want) return std::nullopt;
  auto file_at = text.find("file=");
  if (file_at == std::string::npos) return std::nullopt;
  auto nl = text.find('\n', file_at);
  if (nl == std::string::npos || nl <= file_at + 5) return std::nullopt;
  std::string name = text.substr(file_at + 5, nl - file_at - 5);
  if (name.find('/') != std::string::npos) return std::nullopt;
  return name;
}

void write_manifest(const fs::path& dir, uint64_t generation,
                    const std::string& filename) {
  std::string text = "otter-checkpoint v1\ngeneration=" +
                     std::to_string(generation) + "\nfile=" + filename + "\n";
  text += "crc=" + [&] {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", crc32(text.data(), text.size()));
    return std::string(buf);
  }() + "\n";
  std::vector<std::byte> bytes(text.size());
  std::memcpy(bytes.data(), text.data(), text.size());
  write_atomic(dir / "MANIFEST", bytes);
}

}  // namespace

uint32_t crc32(const void* data, size_t n, uint32_t seed) {
  const auto& t = crc_table().t;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// -- Writer -------------------------------------------------------------------

void Writer::u8(uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
void Writer::u32(uint32_t v) { append_u32(buf_, v); }
void Writer::u64(uint64_t v) { append_u64(buf_, v); }

void Writer::f64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Writer::bytes(const void* data, size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void Writer::blob(const std::vector<std::byte>& b) {
  u64(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

// -- Reader -------------------------------------------------------------------

void Reader::raw(void* out, size_t n) {
  if (remaining() < n) bad("truncated section payload", "");
  std::memcpy(out, data_, n);
  data_ += n;
}

uint8_t Reader::u8() {
  uint8_t v = 0;
  raw(&v, 1);
  return v;
}

uint32_t Reader::u32() {
  if (remaining() < 4) bad("truncated section payload", "");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(std::to_integer<uint8_t>(data_[i])) << (8 * i);
  data_ += 4;
  return v;
}

uint64_t Reader::u64() {
  if (remaining() < 8) bad("truncated section payload", "");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(std::to_integer<uint8_t>(data_[i])) << (8 * i);
  data_ += 8;
  return v;
}

double Reader::f64() {
  uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str() {
  uint64_t n = u64();
  if (n > remaining()) bad("string length exceeds payload", "");
  std::string s(reinterpret_cast<const char*>(data_), n);
  data_ += n;
  return s;
}

std::vector<std::byte> Reader::blob() {
  uint64_t n = u64();
  if (n > remaining()) bad("blob length exceeds payload", "");
  std::vector<std::byte> b(data_, data_ + n);
  data_ += n;
  return b;
}

// -- checkpoint files ---------------------------------------------------------

std::string write_checkpoint(const std::string& dir, const CheckpointMeta& meta,
                             const std::vector<std::vector<std::byte>>& ranks,
                             const std::string& output_prefix) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw SnapshotError("cannot create checkpoint dir '" + dir +
                        "': " + ec.message());

  std::vector<std::byte> file(kMagic.size());
  std::memcpy(file.data(), kMagic.data(), kMagic.size());

  Writer header;
  header.u64(meta.generation);
  header.u64(meta.statement);
  header.u32(meta.nranks);
  header.u32(meta.interval);
  append_section(file, kSecHeader, header.buffer());

  for (size_t r = 0; r < ranks.size(); ++r) {
    Writer sec;
    sec.u32(static_cast<uint32_t>(r));
    sec.blob(ranks[r]);
    append_section(file, kSecRank, sec.buffer());
  }

  Writer out;
  out.str(output_prefix);
  append_section(file, kSecOutput, out.buffer());
  append_section(file, kSecEnd, {});

  std::string name = gen_filename(meta.generation);
  write_atomic(fs::path(dir) / name, file);
  write_manifest(dir, meta.generation, name);
  return (fs::path(dir) / name).string();
}

LoadedCheckpoint read_checkpoint(const std::string& path) {
  auto data = read_all(path);
  if (!data) bad("unreadable file", path);
  const std::vector<std::byte>& buf = *data;
  if (buf.size() < kMagic.size() ||
      std::memcmp(buf.data(), kMagic.data(), kMagic.size()) != 0)
    bad("bad magic or unsupported version", path);

  LoadedCheckpoint ck;
  ck.file = path;
  size_t pos = kMagic.size();
  bool have_header = false, have_output = false, have_end = false;
  while (pos < buf.size()) {
    if (have_end) bad("trailing data after END section", path);
    Reader frame(buf.data() + pos, buf.size() - pos);
    uint32_t tag = frame.u32();
    uint64_t len = frame.u64();
    if (len > kMaxSection || len + 4 > frame.remaining())
      bad("truncated section", path);
    const std::byte* payload = buf.data() + pos + 12;
    uint32_t want = Reader(payload + len, 4).u32();
    if (crc32(payload, len) != want) bad("section CRC mismatch", path);
    Reader body(payload, len);
    switch (tag) {
      case kSecHeader:
        if (have_header) bad("duplicate header", path);
        have_header = true;
        ck.meta.generation = body.u64();
        ck.meta.statement = body.u64();
        ck.meta.nranks = body.u32();
        ck.meta.interval = body.u32();
        if (ck.meta.nranks == 0 || ck.meta.nranks > 4096)
          bad("implausible rank count", path);
        break;
      case kSecRank: {
        if (!have_header || have_output) bad("rank section out of order", path);
        uint32_t rank = body.u32();
        if (rank != ck.rank_state.size()) bad("rank sections not dense", path);
        ck.rank_state.push_back(body.blob());
        break;
      }
      case kSecOutput:
        if (!have_header || have_output) bad("output section out of order", path);
        have_output = true;
        ck.output_prefix = body.str();
        break;
      case kSecEnd:
        have_end = true;
        break;
      default:
        bad("unknown section tag", path);
    }
    pos += 12 + len + 4;
  }
  if (!have_header || !have_output || !have_end)
    bad("incomplete checkpoint (missing section)", path);
  if (ck.rank_state.size() != ck.meta.nranks)
    bad("rank section count disagrees with header", path);
  return ck;
}

std::optional<LoadedCheckpoint> load_latest(
    const std::string& dir, std::vector<std::string>* warnings) {
  auto warn = [&](const std::string& msg) {
    if (warnings) warnings->push_back("[E5005] " + msg);
  };
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return std::nullopt;

  std::vector<std::string> tried;
  if (auto name = read_manifest(dir)) {
    try {
      auto ck = read_checkpoint((fs::path(dir) / *name).string());
      return ck;
    } catch (const SnapshotError& e) {
      warn(std::string(e.what()) + "; falling back to older generations");
      tried.push_back(*name);
    }
  } else if (fs::exists(fs::path(dir) / "MANIFEST", ec)) {
    warn("checkpoint manifest in '" + dir +
         "' is torn or corrupt; scanning generations");
  }

  // Scan gen-*.ckpt newest-generation-first.
  std::vector<std::pair<uint64_t, std::string>> gens;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    auto name = entry.path().filename().string();
    if (auto g = parse_gen(name)) gens.emplace_back(*g, name);
  }
  std::sort(gens.rbegin(), gens.rend());
  for (const auto& [gen, name] : gens) {
    if (std::find(tried.begin(), tried.end(), name) != tried.end()) continue;
    try {
      return read_checkpoint((fs::path(dir) / name).string());
    } catch (const SnapshotError& e) {
      warn(std::string(e.what()) + "; trying previous generation");
    }
  }
  return std::nullopt;
}

uint64_t prune_checkpoints(const std::string& dir, uint64_t max_bytes,
                           size_t keep) {
  if (max_bytes == 0) return 0;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;

  std::vector<std::pair<uint64_t, fs::path>> gens;  // ascending generation
  uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    auto name = entry.path().filename().string();
    if (auto g = parse_gen(name)) {
      gens.emplace_back(*g, entry.path());
      total += static_cast<uint64_t>(fs::file_size(entry.path(), ec));
    }
  }
  std::sort(gens.begin(), gens.end());

  // Delete oldest-first, but never into the newest `keep` generations.
  uint64_t freed = 0;
  for (size_t i = 0; i + keep < gens.size() && total > max_bytes; ++i) {
    uint64_t sz = static_cast<uint64_t>(fs::file_size(gens[i].second, ec));
    if (fs::remove(gens[i].second, ec) && !ec) {
      total -= sz;
      freed += sz;
    }
  }
  return freed;
}

}  // namespace otter::snap
