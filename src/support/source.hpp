// Source buffers and source locations for the Otter MATLAB compiler.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace otter {

/// A location inside a source buffer. Lines and columns are 1-based,
/// matching what editors and the MATLAB interpreter report.
struct SourceLoc {
  uint32_t file = 0;  ///< index into SourceManager's buffer table
  uint32_t line = 0;
  uint32_t col = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// One loaded source buffer (a script or a user M-file).
class SourceBuffer {
 public:
  SourceBuffer(std::string name, std::string text)
      : name_(std::move(name)), text_(std::move(text)) {
    line_starts_.push_back(0);
    for (size_t i = 0; i < text_.size(); ++i) {
      if (text_[i] == '\n') line_starts_.push_back(i + 1);
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string_view text() const { return text_; }

  /// Text of the (1-based) line, without the trailing newline.
  [[nodiscard]] std::string_view line(uint32_t line_no) const {
    if (line_no == 0 || line_no > line_starts_.size()) return {};
    size_t begin = line_starts_[line_no - 1];
    size_t end = line_no < line_starts_.size() ? line_starts_[line_no] : text_.size();
    while (end > begin && (text_[end - 1] == '\n' || text_[end - 1] == '\r')) --end;
    return std::string_view(text_).substr(begin, end - begin);
  }

  [[nodiscard]] uint32_t line_count() const {
    return static_cast<uint32_t>(line_starts_.size());
  }

 private:
  std::string name_;
  std::string text_;
  std::vector<size_t> line_starts_;
};

/// Owns every source buffer in a compilation (initial script + all user
/// M-files pulled in by identifier resolution).
class SourceManager {
 public:
  /// Registers a buffer and returns its file id.
  uint32_t add_buffer(std::string name, std::string text) {
    buffers_.push_back(
        std::make_unique<SourceBuffer>(std::move(name), std::move(text)));
    return static_cast<uint32_t>(buffers_.size() - 1);
  }

  /// Loads a file from disk; returns the file id or -1 on failure.
  int load_file(const std::string& path);

  [[nodiscard]] const SourceBuffer& buffer(uint32_t id) const {
    return *buffers_.at(id);
  }
  [[nodiscard]] size_t buffer_count() const { return buffers_.size(); }

 private:
  std::vector<std::unique_ptr<SourceBuffer>> buffers_;
};

}  // namespace otter
