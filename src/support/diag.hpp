// Diagnostics engine: collects errors/warnings/notes with source locations.
//
// Every diagnostic carries a stable machine-readable code so tooling can key
// on the class of problem rather than the message text:
//   E0xxx  driver / resource budgets
//   E1xxx  lexer
//   E2xxx  parser
//   E3xxx  sema (resolve + inference)
//   E4xxx  lowering
//   E5xxx  runtime
// The full registry lives in DESIGN.md ("Structured diagnostics").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/source.hpp"

namespace otter {

enum class DiagSeverity { Note, Warning, Error };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLoc loc;
  std::string message;
  std::string code;  // e.g. "E2001"; empty for legacy uncoded reports
};

/// Accumulates diagnostics during a compilation. Passes report through this
/// instead of throwing so that the driver can show every problem at once.
class DiagEngine {
 public:
  explicit DiagEngine(const SourceManager* sm = nullptr) : sm_(sm) {}

  void attach(const SourceManager* sm) { sm_ = sm; }

  /// Errors beyond this many are counted but not stored or rendered
  /// (0 = unlimited). A single E0001 note marks the cutoff point.
  void set_max_errors(size_t n) { max_errors_ = n; }
  /// True once the --max-errors cap has been hit; compilation phases use
  /// this to stop early instead of grinding through a hopeless input.
  [[nodiscard]] bool at_error_limit() const {
    return max_errors_ != 0 && error_count_ >= max_errors_;
  }
  [[nodiscard]] size_t suppressed_count() const { return suppressed_; }

  void error(const char* code, SourceLoc loc, std::string msg) {
    if (at_error_limit()) {
      if (suppressed_ == 0) {
        diags_.push_back({DiagSeverity::Note, {},
                          "too many errors emitted, stopping now "
                          "(use --max-errors=0 to see all)",
                          "E0001"});
      }
      ++suppressed_;
      ++error_count_;
      return;
    }
    diags_.push_back({DiagSeverity::Error, loc, std::move(msg), code});
    ++error_count_;
  }
  void warning(const char* code, SourceLoc loc, std::string msg) {
    if (at_error_limit()) return;
    diags_.push_back({DiagSeverity::Warning, loc, std::move(msg), code});
  }
  void note(const char* code, SourceLoc loc, std::string msg) {
    if (at_error_limit()) return;
    diags_.push_back({DiagSeverity::Note, loc, std::move(msg), code});
  }

  // Legacy uncoded forms (kept for tests and out-of-tree callers).
  void error(SourceLoc loc, std::string msg) { error("", loc, std::move(msg)); }
  void warning(SourceLoc loc, std::string msg) {
    warning("", loc, std::move(msg));
  }
  void note(SourceLoc loc, std::string msg) { note("", loc, std::move(msg)); }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Renders "file:line:col: severity[code]: message" plus a source snippet.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Machine-readable rendering: a JSON array of
  /// {"code","severity","file","line","col","message"} objects.
  void print_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  void clear() {
    diags_.clear();
    error_count_ = 0;
    suppressed_ = 0;
  }

 private:
  const SourceManager* sm_;
  std::vector<Diagnostic> diags_;
  size_t error_count_ = 0;
  size_t max_errors_ = 0;
  size_t suppressed_ = 0;
};

}  // namespace otter
