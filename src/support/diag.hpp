// Diagnostics engine: collects errors/warnings/notes with source locations.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/source.hpp"

namespace otter {

enum class DiagSeverity { Note, Warning, Error };

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLoc loc;
  std::string message;
};

/// Accumulates diagnostics during a compilation. Passes report through this
/// instead of throwing so that the driver can show every problem at once.
class DiagEngine {
 public:
  explicit DiagEngine(const SourceManager* sm = nullptr) : sm_(sm) {}

  void attach(const SourceManager* sm) { sm_ = sm; }

  void error(SourceLoc loc, std::string msg) {
    diags_.push_back({DiagSeverity::Error, loc, std::move(msg)});
    ++error_count_;
  }
  void warning(SourceLoc loc, std::string msg) {
    diags_.push_back({DiagSeverity::Warning, loc, std::move(msg)});
  }
  void note(SourceLoc loc, std::string msg) {
    diags_.push_back({DiagSeverity::Note, loc, std::move(msg)});
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Renders "file:line:col: severity: message" plus a source snippet.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  void clear() {
    diags_.clear();
    error_count_ = 0;
  }

 private:
  const SourceManager* sm_;
  std::vector<Diagnostic> diags_;
  size_t error_count_ = 0;
};

}  // namespace otter
