// Versioned binary checkpoint format for coordinated SPMD snapshots.
//
// A checkpoint *generation* is one file `gen-<N>.ckpt` holding the complete
// coordinated state of a run at a quiescent statement boundary: a header
// (generation, statement index, rank count, interval), one opaque per-rank
// state blob, the rank-0 output prefix, and an END marker proving the writer
// reached the end. Every section is framed `[tag][len][payload][crc32]`, so
// a torn or bit-flipped file is detected on load (E5005) rather than
// resurrected as wrong answers. Files are written to a temp name and renamed
// into place; a `MANIFEST` file (also written via rename) names the newest
// complete generation. Recovery ladder on load: manifest target if valid,
// else every `gen-*.ckpt` newest-first, else nothing — each rejected
// candidate surfaces an E5005 warning, never a hard failure.
//
// This layer is deliberately below minimpi/rtlib: it moves bytes and checks
// integrity. What goes *into* a rank blob is the driver's business.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace otter::snap {

/// Integrity or format violation in a snapshot file. Carries the stable
/// runtime code "E5005"; recovery paths downgrade it to a warning and fall
/// back to the previous generation.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& msg) : std::runtime_error(msg) {}
  [[nodiscard]] static const char* diag_code() noexcept { return "E5005"; }
};

/// CRC-32 (IEEE 802.3, reflected) of `n` bytes, continuing from `seed`.
uint32_t crc32(const void* data, size_t n, uint32_t seed = 0);

// -- primitive serialization ---------------------------------------------------
// Little-endian fixed-width primitives; doubles are bit-preserved through
// uint64, so restored matrix payloads are bitwise-identical to the originals.

/// Append-only byte buffer with typed writers.
class Writer {
 public:
  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void f64(double v);
  void str(const std::string& s);              // u64 length + bytes
  void bytes(const void* data, size_t n);      // raw append (no length)
  void blob(const std::vector<std::byte>& b);  // u64 length + bytes

  [[nodiscard]] const std::vector<std::byte>& buffer() const { return buf_; }
  /// Moves the buffer out; the writer is empty afterwards.
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a byte range; every overrun or malformed
/// length throws SnapshotError instead of reading garbage.
class Reader {
 public:
  Reader(const std::byte* data, size_t n) : data_(data), end_(data + n) {}
  explicit Reader(const std::vector<std::byte>& b)
      : Reader(b.data(), b.size()) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  std::vector<std::byte> blob();
  void raw(void* out, size_t n);

  [[nodiscard]] size_t remaining() const {
    return static_cast<size_t>(end_ - data_);
  }
  [[nodiscard]] bool at_end() const { return data_ == end_; }

 private:
  const std::byte* data_;
  const std::byte* end_;
};

// -- checkpoint files ----------------------------------------------------------

/// Global facts recorded in a checkpoint's HEADER section.
struct CheckpointMeta {
  uint64_t generation = 0;  // monotonically increasing per run lineage
  uint64_t statement = 0;   // next top-level statement index to execute
  uint32_t nranks = 0;      // rank count the blobs were captured under
  uint32_t interval = 0;    // checkpoint interval the run was using
};

/// A fully validated checkpoint loaded back from disk.
struct LoadedCheckpoint {
  CheckpointMeta meta;
  std::vector<std::vector<std::byte>> rank_state;  // one opaque blob per rank
  std::string output_prefix;  // rank-0 output accumulated before `statement`
  std::string file;           // path it was loaded from
};

/// Serializes and durably writes one generation into `dir` (created if
/// missing): `gen-<N>.ckpt.tmp` -> rename, then the MANIFEST the same way.
/// Returns the final checkpoint path. Throws SnapshotError on I/O failure.
std::string write_checkpoint(const std::string& dir, const CheckpointMeta& meta,
                             const std::vector<std::vector<std::byte>>& ranks,
                             const std::string& output_prefix);

/// Parses and CRC-validates one checkpoint file. Throws SnapshotError on any
/// corruption, truncation, or version mismatch.
LoadedCheckpoint read_checkpoint(const std::string& path);

/// Newest valid checkpoint in `dir`: the manifest target when intact,
/// otherwise every gen-*.ckpt newest-generation-first. Every rejected
/// candidate appends an "[E5005] ..." line to `warnings` (when non-null) and
/// the ladder moves on. Returns nullopt when nothing valid exists (including
/// a missing directory) — callers start fresh.
std::optional<LoadedCheckpoint> load_latest(const std::string& dir,
                                            std::vector<std::string>* warnings);

/// Retention budget: deletes oldest generations until the directory's
/// checkpoint bytes fit `max_bytes`, always keeping the newest `keep` files.
/// Returns bytes freed. A `max_bytes` of 0 disables pruning.
uint64_t prune_checkpoints(const std::string& dir, uint64_t max_bytes,
                           size_t keep = 2);

}  // namespace otter::snap
