#include "support/matio.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace otter {

std::optional<MatFile> read_mat_file(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  MatFile mf;
  std::string line;
  while (std::getline(in, line)) {
    // Skip blank lines and '%' comments.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '%') continue;
    std::istringstream ls(line);
    std::vector<double> row;
    double v;
    while (ls >> v) row.push_back(v);
    if (!ls.eof()) {
      if (error) {
        *error = "malformed number in '" + path + "' line " +
                 std::to_string(mf.rows + 1);
      }
      return std::nullopt;
    }
    if (row.empty()) continue;
    if (mf.rows == 0) {
      mf.cols = row.size();
    } else if (row.size() != mf.cols) {
      if (error) {
        *error = "ragged rows in '" + path + "' (line " +
                 std::to_string(mf.rows + 1) + " has " +
                 std::to_string(row.size()) + " values, expected " +
                 std::to_string(mf.cols) + ")";
      }
      return std::nullopt;
    }
    for (double x : row) {
      if (x != std::floor(x)) mf.all_integer = false;
    }
    mf.data.insert(mf.data.end(), row.begin(), row.end());
    ++mf.rows;
  }
  if (mf.rows == 0) {
    if (error) *error = "'" + path + "' contains no data";
    return std::nullopt;
  }
  return mf;
}

bool write_mat_file(const std::string& path, size_t rows, size_t cols,
                    const std::vector<double>& data) {
  if (data.size() != rows * cols) return false;
  std::ofstream out(path);
  if (!out) return false;
  char buf[64];
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c) out << ' ';
      std::snprintf(buf, sizeof buf, "%.17g", data[r * cols + c]);
      out << buf;
    }
    out << '\n';
  }
  return out.good();
}

}  // namespace otter
