#include "support/diag_codes.hpp"

#include <algorithm>

namespace otter {

namespace {

constexpr const char* kBudget = "resource budget";
constexpr const char* kService = "compile service (otterd)";
constexpr const char* kLexer = "lexer";
constexpr const char* kParser = "parser";
constexpr const char* kResolve = "identifier resolution";
constexpr const char* kInfer = "type/shape inference";
constexpr const char* kLint = "static analysis (otterlint)";
constexpr const char* kLower = "lowering";
constexpr const char* kRuntime = "run time";
constexpr const char* kVerify = "LIR verifier";

// clang-format off
const std::vector<DiagCodeInfo> kRegistry = {
  {"E0001", "E00", kBudget,  "error limit reached; further diagnostics suppressed"},
  {"E0002", "E00", kBudget,  "expression/statement nesting exceeds the compile budget"},
  {"E0003", "E00", kBudget,  "AST node budget exceeded"},
  {"E0004", "E00", kBudget,  "compilation wall-clock budget exceeded"},
  {"E0005", "E00", kBudget,  "SSA version budget exceeded"},
  {"E0006", "E00", kBudget,  "function instantiation budget exceeded"},
  {"E0007", "E00", kBudget,  "LIR instruction budget exceeded"},
  {"E0008", "E00", kService, "server overloaded: admission queue full, request shed"},
  {"E0009", "E00", kService, "request wall-clock deadline exceeded"},
  {"E0010", "E00", kService, "script quarantined after repeated crashes (circuit breaker open)"},
  {"E0011", "E00", kService, "malformed service request"},
  {"E0012", "E00", kService, "request exceeds the service admission limits"},
  {"E0013", "E00", kService, "malformed fault-injection plan"},
  {"E0014", "E00", kService, "worker process died (crashed, killed, or exited before replying)"},

  {"E1101", "E11", kLexer,   "unexpected character"},
  {"E1102", "E11", kLexer,   "unterminated string literal"},
  {"E1103", "E11", kLexer,   "unterminated block comment"},

  {"E2001", "E20", kParser,  "expected a specific token"},
  {"E2002", "E20", kParser,  "expected output parameter name"},
  {"E2003", "E20", kParser,  "expected function name"},
  {"E2004", "E20", kParser,  "expected parameter name"},
  {"E2005", "E20", kParser,  "statement after a function definition"},
  {"E2006", "E20", kParser,  "expected end of statement after 'break'/'continue'"},
  {"E2007", "E20", kParser,  "expected loop variable after 'for'"},
  {"E2008", "E20", kParser,  "expected variable names after 'global'"},
  {"E2009", "E20", kParser,  "invalid assignment target"},
  {"E2010", "E20", kParser,  "chained indexing f(x)(y) unsupported"},
  {"E2011", "E20", kParser,  "'end' outside an index expression"},
  {"E2012", "E20", kParser,  "expected an expression"},
  {"E2013", "E20", kParser,  "matrix elements must be comma-separated"},

  {"E3001", "E30", kResolve, "undefined variable or function"},
  {"E3002", "E30", kResolve, "more than 2-dimensional indexing"},
  {"E3003", "E30", kResolve, "too many arguments to a builtin"},
  {"E3004", "E30", kResolve, "wrong number of arguments to a builtin"},
  {"E3005", "E30", kResolve, "':'/'end' outside variable indexing"},
  {"E3006", "E30", kResolve, "errors while parsing a user M-file"},
  {"E3007", "E30", kResolve, "M-file does not define a function"},

  {"E3101", "E31", kInfer,   "recursive function unsupported"},
  {"E3102", "E31", kInfer,   "function output may be undefined on some path (warning)"},
  {"E3103", "E31", kInfer,   "variable mixes literal and numeric values"},
  {"E3104", "E31", kInfer,   "variable may be used before it is defined"},
  {"E3105", "E31", kInfer,   "range endpoints must be real"},
  {"E3106", "E31", kInfer,   "arithmetic on string values"},
  {"E3107", "E31", kInfer,   "operand shapes disagree"},
  {"E3108", "E31", kInfer,   "inner matrix dimensions disagree for '*'"},
  {"E3109", "E31", kInfer,   "matrix '/' requires a scalar divisor"},
  {"E3110", "E31", kInfer,   "matrix '\\' requires a scalar divisor"},
  {"E3111", "E31", kInfer,   "matrix '^' unsupported"},
  {"E3112", "E31", kInfer,   "shape of a reduction argument assumed (warning)"},
  {"E3113", "E31", kInfer,   "inconsistent matrix literal shape"},
  {"E3114", "E31", kInfer,   "strings inside matrix literals"},
  {"E3115", "E31", kInfer,   "function returns fewer values than requested"},
  {"E3116", "E31", kInfer,   "load requires a literal file name"},
  {"E3117", "E31", kInfer,   "load sample data file unavailable at compile time"},

  {"E4001", "E40", kLower,   "complex values unsupported by the parallel run time"},
  {"E4002", "E40", kLower,   "string value in a numeric context"},
  {"E4003", "E40", kLower,   "matrix literal in scalar context"},
  {"E4004", "E40", kLower,   "':'/'end' outside an index"},
  {"E4005", "E40", kLower,   "unsupported scalar expression over matrix operands"},
  {"E4006", "E40", kLower,   "size(m, d) requires a constant dimension"},
  {"E4007", "E40", kLower,   "builtin unsupported in this context"},
  {"E4008", "E40", kLower,   "unsupported arithmetic around 'end'"},
  {"E4009", "E40", kLower,   "unsupported matrix-valued name"},
  {"E4010", "E40", kLower,   "matrix blocks inside literals unsupported"},
  {"E4011", "E40", kLower,   "expression unsupported in matrix context"},
  {"E4012", "E40", kLower,   "builtin inside an element-wise expression unsupported"},
  {"E4013", "E40", kLower,   "operator on matrices unsupported"},
  {"E4014", "E40", kLower,   "matrix-producing builtin unsupported"},
  {"E4015", "E40", kLower,   "a(:) reshape unsupported"},
  {"E4016", "E40", kLower,   "general vector-subscript indexing unsupported"},
  {"E4017", "E40", kLower,   "submatrix indexing unsupported"},
  {"E4018", "E40", kLower,   "internal: no inferred instance for a call"},
  {"E4019", "E40", kLower,   "for loops only over ranges"},
  {"E4020", "E40", kLower,   "'global' unsupported"},
  {"E4021", "E40", kLower,   "fprintf requires a literal format string"},
  {"E4022", "E40", kLower,   "builtin unsupported as a statement"},
  {"E4023", "E40", kLower,   "multiple assignment requires a function call"},
  {"E4024", "E40", kLower,   "multi-output builtins other than size unsupported"},
  {"E4025", "E40", kLower,   "indexed targets in multi-assignment unsupported"},
  {"E4026", "E40", kLower,   "internal: indexed write into scalar storage"},
  {"E4027", "E40", kLower,   "a(:,:) assignment unsupported"},
  {"E4028", "E40", kLower,   "a(:) assignment unsupported"},
  {"E4029", "E40", kLower,   "vector-subscript assignment unsupported"},
  {"E4030", "E40", kLower,   "'break'/'continue' outside of a loop"},

  {"E5001", "E50", kRuntime, "parallel run-time error"},
  {"E5002", "E50", kRuntime, "interpreter run-time error"},
  {"E5003", "E50", kRuntime, "shape guard failed (degraded inference assumption wrong)"},
  {"E5004", "E50", kRuntime, "execution cancelled or request deadline exceeded"},
  {"E5005", "E50", kRuntime, "torn or corrupt checkpoint detected (recovered from an older generation when possible)"},
  {"E5006", "E50", kRuntime, "memory budget exceeded"},
  {"E5007", "E50", kRuntime, "invalid matrix dimensions (negative, non-finite, or overflow-prone)"},

  {"E6001", "E60", kVerify,  "reference to an undeclared variable"},
  {"E6002", "E60", kVerify,  "compiler temporary used before definition"},
  {"E6003", "E60", kVerify,  "operand arity wrong for the opcode"},
  {"E6004", "E60", kVerify,  "operand or destination kind mismatch"},
  {"E6005", "E60", kVerify,  "malformed control flow"},
  {"E6006", "E60", kVerify,  "malformed user-function call"},
  {"E6007", "E60", kVerify,  "malformed owner-guarded element write"},
  {"E6008", "E60", kVerify,  "missing or malformed expression tree"},
  {"E6009", "E60", kVerify,  "shape guard deleted without an abstract-interpretation proof"},

  {"W3201", "W32", kLint,    "use before definition on some path"},
  {"W3202", "W32", kLint,    "dead store (value overwritten before being read)"},
  {"W3203", "W32", kLint,    "unused variable"},
  {"W3204", "W32", kLint,    "unreachable code"},
  {"W3205", "W32", kLint,    "constant branch condition"},
  {"W3206", "W32", kLint,    "variable shadows a builtin function"},
  {"W3207", "W32", kLint,    "loop-invariant communication (hoistable run-time call)"},
  {"W3208", "W32", kLint,    "provably out-of-bounds index or invalid extent"},
  {"W3209", "W32", kLint,    "provably zero-trip loop"},
  {"W3210", "W32", kLint,    "collective communication under a rank-divergent condition"},
};
// clang-format on

}  // namespace

const std::vector<DiagCodeInfo>& diag_code_registry() { return kRegistry; }

const DiagCodeInfo* find_diag_code(std::string_view code) {
  auto it = std::lower_bound(
      kRegistry.begin(), kRegistry.end(), code,
      [](const DiagCodeInfo& a, std::string_view c) { return a.code < c; });
  if (it == kRegistry.end() || it->code != code) return nullptr;
  return &*it;
}

}  // namespace otter
