// Process-wide memory resource governor.
//
// otterd runs untrusted scripts whose matrix dimensions are user-controlled:
// one `zeros(40000)` is a ~12 GB allocation that used to reach the host
// allocator unchecked and kill the daemon (or the whole machine) with an
// OOM instead of the offending request. The governor is the accounting
// layer between the run-time library's buffers and the host allocator:
// every DMat / interpreter Mat payload is allocated through
// gov::Accounted<T>, which charges the process-wide ledger and fails a
// request that exceeds its byte budget with a catchable BudgetExceeded
// (mapped to the stable E5006 diagnostic at the exception barriers) long
// before the host OOM killer gets involved.
//
// Budgets are installed per run with ScopedBudget. In the sandboxed
// execution tier (service/sandbox.hpp) the child process runs exactly one
// request, so "process-wide" *is* "per-request"; under --isolate=none the
// ledger is shared by every in-flight request and the budget is best-effort
// (DESIGN.md §17 documents the difference).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace otter::gov {

/// Charge refused: the request's byte budget would be exceeded. Derives
/// from std::bad_alloc so the existing allocation-failure barriers catch
/// governor denials and true host OOM through one handler; what() carries
/// the accounting detail a plain bad_alloc cannot.
class BudgetExceeded : public std::bad_alloc {
 public:
  BudgetExceeded(uint64_t requested, uint64_t used, uint64_t budget) noexcept;
  [[nodiscard]] const char* what() const noexcept override { return msg_; }

  uint64_t requested = 0;  ///< bytes the denied charge asked for
  uint64_t used = 0;       ///< bytes charged at the time of denial
  uint64_t budget = 0;     ///< the budget that was exceeded

 private:
  char msg_[160];  // preformatted: throwing must not itself allocate
};

/// Ledger snapshot (all byte counts).
struct GovernorStats {
  uint64_t used = 0;      ///< currently charged
  uint64_t peak = 0;      ///< high-water mark since the last reset_window()
  uint64_t denials = 0;   ///< charges refused since the last reset_window()
  uint64_t budget = 0;    ///< active budget (0 = unlimited)
};

/// The process-wide accounted-allocation ledger. All operations are
/// lock-free atomics: charge/release sit on the matrix-allocation hot path
/// of every rank thread.
class ResourceGovernor {
 public:
  static ResourceGovernor& instance();

  /// Installs a budget in bytes (0 = unlimited). Does not disturb the
  /// current usage count — long-lived objects keep their charges.
  void set_budget(uint64_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Charges `bytes` against the ledger. Throws BudgetExceeded (a
  /// std::bad_alloc) when a budget is installed and the charge would pass
  /// it; the ledger is left unchanged on refusal.
  void charge(uint64_t bytes);

  /// Returns a previous charge. Never throws; clamps at zero so a release
  /// that outlives a budget reset cannot underflow the ledger.
  void release(uint64_t bytes) noexcept;

  [[nodiscard]] GovernorStats stats() const;

  /// Starts a fresh observation window: peak := current usage, denials := 0.
  /// Called at the top of a request so its reported peak is its own.
  void reset_window();

 private:
  std::atomic<uint64_t> budget_{0};
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> denials_{0};
};

/// RAII budget scope: installs `bytes` (when nonzero) and a fresh
/// observation window, restores the previous budget on exit. Zero bytes
/// installs nothing (the surrounding budget, if any, stays active).
class ScopedBudget {
 public:
  explicit ScopedBudget(uint64_t bytes) : installed_(bytes != 0) {
    if (installed_) {
      prev_ = ResourceGovernor::instance().budget();
      ResourceGovernor::instance().set_budget(bytes);
      ResourceGovernor::instance().reset_window();
    }
  }
  ~ScopedBudget() {
    if (installed_) ResourceGovernor::instance().set_budget(prev_);
  }
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  bool installed_;
  uint64_t prev_ = 0;
};

/// STL allocator that routes through the governor: charge before the host
/// allocation, release on deallocation. The charge is refunded if the host
/// allocator itself fails, so the ledger never drifts.
template <typename T>
struct Accounted {
  using value_type = T;

  Accounted() noexcept = default;
  template <typename U>
  /* implicit */ Accounted(const Accounted<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    const uint64_t bytes = static_cast<uint64_t>(n) * sizeof(T);
    ResourceGovernor::instance().charge(bytes);
    try {
      return std::allocator<T>().allocate(n);
    } catch (...) {
      ResourceGovernor::instance().release(bytes);
      throw;
    }
  }
  void deallocate(T* p, std::size_t n) noexcept {
    std::allocator<T>().deallocate(p, n);
    ResourceGovernor::instance().release(static_cast<uint64_t>(n) * sizeof(T));
  }

  template <typename U>
  bool operator==(const Accounted<U>&) const noexcept { return true; }
  template <typename U>
  bool operator!=(const Accounted<U>&) const noexcept { return false; }
};

/// The governed buffer type used for matrix payloads throughout the
/// run-time library and the interpreter.
using DoubleBuffer = std::vector<double, Accounted<double>>;

}  // namespace otter::gov
