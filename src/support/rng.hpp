// Deterministic RNG shared by every backend.
//
// The interpreter, the distributed run-time library, and generated code all
// implement MATLAB's `rand` with this exact LCG so that a script computes
// bit-identical data no matter which backend runs it or how many ranks it
// runs on. Distribution-independence relies on O(log n) skip-ahead.
#pragma once

#include <cstdint>

namespace otter {

class Lcg {
 public:
  explicit Lcg(uint64_t seed = 1) : state_(seed) {}

  void seed(uint64_t s) { state_ = s; }

  /// Next uniform double in [0, 1).
  double next() {
    state_ = kMulA * state_ + kAddC;
    return to_unit(state_);
  }

  /// Skips n steps in O(log n) by exponentiating the affine map x -> ax + c
  /// (arithmetic is naturally mod 2^64).
  void discard(uint64_t n) {
    uint64_t a = kMulA;
    uint64_t c = kAddC;
    uint64_t acc_a = 1;
    uint64_t acc_c = 0;
    while (n > 0) {
      if (n & 1) {
        acc_a = acc_a * a;
        acc_c = acc_c * a + c;
      }
      c = c * a + c;
      a = a * a;
      n >>= 1;
    }
    state_ = acc_a * state_ + acc_c;
  }

  /// The value the sequence produces at 0-based position `pos` after `seed`,
  /// i.e. what pos+1 calls to next() would return last.
  static double value_at(uint64_t seed, uint64_t pos) {
    Lcg g(seed);
    g.discard(pos);
    return g.next();
  }

 private:
  static double to_unit(uint64_t s) {
    return static_cast<double>((s >> 11) & ((1ULL << 53) - 1)) /
           static_cast<double>(1ULL << 53);
  }

  static constexpr uint64_t kMulA = 6364136223846793005ULL;
  static constexpr uint64_t kAddC = 1442695040888963407ULL;

  uint64_t state_;
};

}  // namespace otter
