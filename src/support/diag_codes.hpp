// Central registry of every diagnostic code the compiler can emit.
//
// Codes are grouped into numeric bands by compiler phase:
//   E00xx  resource budgets (shared by every phase)
//   E11xx  lexer
//   E20xx  parser
//   E30xx  identifier resolution
//   E31xx  type/rank/shape inference (E3102/E3112 are warnings)
//   W32xx  otterlint static-analysis warnings
//   E40xx  lowering (subset restrictions, passes 4-6)
//   E50xx  run time (executor, generated code, interpreter)
//   E60xx  LIR verifier (--verify-lir structural self-checks)
//
// diag_registry_test asserts this table, the sources, and DESIGN.md's code
// registry all agree, so the table is the single source of truth.
#pragma once

#include <string_view>
#include <vector>

namespace otter {

struct DiagCodeInfo {
  std::string_view code;    // e.g. "E3104"
  std::string_view band;    // required code prefix, e.g. "E31"
  std::string_view phase;   // human-readable phase name
  std::string_view summary; // one-line description
};

/// Every registered code, sorted ascending.
const std::vector<DiagCodeInfo>& diag_code_registry();

/// Registry entry for a code, or nullptr if unregistered.
const DiagCodeInfo* find_diag_code(std::string_view code);

}  // namespace otter
