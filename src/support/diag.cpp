#include "support/diag.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace otter {

int SourceManager::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return -1;
  std::ostringstream ss;
  ss << in.rdbuf();
  return static_cast<int>(add_buffer(path, ss.str()));
}

namespace {
const char* severity_name(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::Note: return "note";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Error: return "error";
  }
  return "?";
}
}  // namespace

void DiagEngine::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    if (sm_ != nullptr && d.loc.valid() && d.loc.file < sm_->buffer_count()) {
      const SourceBuffer& buf = sm_->buffer(d.loc.file);
      os << buf.name() << ':' << d.loc.line << ':' << d.loc.col << ": ";
      os << severity_name(d.severity) << ": " << d.message << '\n';
      std::string_view line = buf.line(d.loc.line);
      if (!line.empty()) {
        os << "  " << line << '\n';
        os << "  ";
        for (uint32_t i = 1; i < d.loc.col; ++i) os << ' ';
        os << "^\n";
      }
    } else {
      os << severity_name(d.severity) << ": " << d.message << '\n';
    }
  }
}

std::string DiagEngine::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace otter
