#include "support/diag.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/json.hpp"

namespace otter {

int SourceManager::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return -1;
  std::ostringstream ss;
  ss << in.rdbuf();
  return static_cast<int>(add_buffer(path, ss.str()));
}

namespace {
const char* severity_name(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::Note: return "note";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Error: return "error";
  }
  return "?";
}

// Diagnostic messages and file names can carry arbitrary bytes straight out
// of a fuzzed script (source snippets in lexer errors, for instance); the
// shared escaper guarantees valid-JSON output by escaping control characters
// and substituting U+FFFD for malformed UTF-8.
void json_escape(std::ostream& os, const std::string& s) {
  os << json::json_escape(s);
}
}  // namespace

void DiagEngine::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    std::string label = severity_name(d.severity);
    if (!d.code.empty()) label += "[" + d.code + "]";
    if (sm_ != nullptr && d.loc.valid() && d.loc.file < sm_->buffer_count()) {
      const SourceBuffer& buf = sm_->buffer(d.loc.file);
      os << buf.name() << ':' << d.loc.line << ':' << d.loc.col << ": ";
      os << label << ": " << d.message << '\n';
      std::string_view line = buf.line(d.loc.line);
      if (!line.empty()) {
        os << "  " << line << '\n';
        os << "  ";
        for (uint32_t i = 1; i < d.loc.col; ++i) os << ' ';
        os << "^\n";
      }
    } else {
      os << label << ": " << d.message << '\n';
    }
  }
}

std::string DiagEngine::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

void DiagEngine::print_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"code\": \"";
    json_escape(os, d.code);
    os << "\", \"severity\": \"" << severity_name(d.severity) << "\", ";
    if (sm_ != nullptr && d.loc.valid() && d.loc.file < sm_->buffer_count()) {
      os << "\"file\": \"";
      json_escape(os, std::string(sm_->buffer(d.loc.file).name()));
      os << "\", ";
    } else {
      os << "\"file\": null, ";
    }
    if (d.loc.valid()) {
      os << "\"line\": " << d.loc.line << ", \"col\": " << d.loc.col << ", ";
    } else {
      os << "\"line\": null, \"col\": null, ";
    }
    os << "\"message\": \"";
    json_escape(os, d.message);
    os << "\"}";
  }
  os << "\n]\n";
}

std::string DiagEngine::to_json() const {
  std::ostringstream ss;
  print_json(ss);
  return ss.str();
}

}  // namespace otter
