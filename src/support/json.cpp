#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace otter::json {

// -- escaping -----------------------------------------------------------------

namespace {

void append_u_escape(std::string& out, uint32_t cp) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\u%04x", cp);
  out += buf;
}

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not valid UTF-8 (truncated, overlong, surrogate, or
/// out-of-range encodings all count as invalid).
size_t utf8_sequence_length(std::string_view s, size_t i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  size_t len = 0;
  uint32_t cp = 0;
  uint32_t min_cp = 0;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1Fu;
    min_cp = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0Fu;
    min_cp = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07u;
    min_cp = 0x10000;
  } else {
    return 0;  // continuation or invalid lead byte
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    const auto b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3Fu);
  }
  if (cp < min_cp) return 0;                    // overlong encoding
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;   // surrogate half
  if (cp > 0x10FFFF) return 0;                  // beyond Unicode
  return len;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    const auto b = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
      ++i;
    } else if (c == '\\') {
      out += "\\\\";
      ++i;
    } else if (c == '\n') {
      out += "\\n";
      ++i;
    } else if (c == '\r') {
      out += "\\r";
      ++i;
    } else if (c == '\t') {
      out += "\\t";
      ++i;
    } else if (b < 0x20) {
      append_u_escape(out, b);
      ++i;
    } else if (b < 0x80) {
      out += c;
      ++i;
    } else if (size_t len = utf8_sequence_length(s, i); len > 0) {
      out.append(s.substr(i, len));
      i += len;
    } else {
      // Invalid UTF-8 byte: substitute U+FFFD, consume exactly one byte so
      // a later valid sequence still renders.
      out += "\\ufffd";
      ++i;
    }
  }
  return out;
}

// -- writing ------------------------------------------------------------------

namespace {

void dump_value(const JValue& v, std::string& out) {
  switch (v.kind()) {
    case JValue::Kind::Null:
      out += "null";
      return;
    case JValue::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JValue::Kind::Number: {
      double n = v.as_number();
      if (!std::isfinite(n)) {  // JSON has no Inf/NaN; null is the honest spelling
        out += "null";
        return;
      }
      char buf[32];
      if (n == static_cast<double>(static_cast<long long>(n)) &&
          std::fabs(n) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", n);
      }
      out += buf;
      return;
    }
    case JValue::Kind::String:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      return;
    case JValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JValue& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      return;
    }
    case JValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(k);
        out += "\":";
        dump_value(e, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string JValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

// -- parsing ------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : s_(text), max_depth_(max_depth) {}

  std::optional<JValue> run(ParseError* err) {
    skip_ws();
    JValue v;
    if (!parse_value(v, 0)) {
      fill(err);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after the document");
      fill(err);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill(ParseError* err) const {
    if (err != nullptr) *err = {pos_, reason_};
  }

  bool fail(const char* why) {
    if (reason_.empty()) reason_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JValue& out, int depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        out = JValue();
        return literal("null");
      case 't':
        out = JValue(true);
        return literal("true");
      case 'f':
        out = JValue(false);
        return literal("false");
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out = JValue(std::move(str));
        return true;
      }
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JValue& out) {
    size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out = JValue(v);
    return true;
  }

  bool parse_hex4(uint32_t& out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int k = 0; k < 4; ++k) {
      char c = s_[pos_++];
      uint32_t d = 0;
      if (c >= '0' && c <= '9') d = static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape digit");
      out = (out << 4) | d;
    }
    return true;
  }

  static void append_utf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (true) {
      if (at_end()) return fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("truncated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < s_.size() &&
              s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
            pos_ += 2;
            uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired surrogate");
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_array(JValue& out, int depth) {
    ++pos_;  // '['
    JArray arr;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out = JValue(std::move(arr));
      return true;
    }
    while (true) {
      JValue v;
      skip_ws();
      if (!parse_value(v, depth + 1)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      char c = s_[pos_++];
      if (c == ']') break;
      if (c != ',') return fail("expected ',' or ']' in array");
    }
    out = JValue(std::move(arr));
    return true;
  }

  bool parse_object(JValue& out, int depth) {
    ++pos_;  // '{'
    JObject obj;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out = JValue(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || s_[pos_++] != ':') return fail("expected ':'");
      skip_ws();
      JValue v;
      if (!parse_value(v, depth + 1)) return false;
      obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      char c = s_[pos_++];
      if (c == '}') break;
      if (c != ',') return fail("expected ',' or '}' in object");
    }
    out = JValue(std::move(obj));
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
  int max_depth_;
  std::string reason_;
};

}  // namespace

std::optional<JValue> parse(std::string_view text, ParseError* err,
                            int max_depth) {
  return Parser(text, max_depth).run(err);
}

}  // namespace otter::json
