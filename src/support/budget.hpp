// Compile-time resource budgets (ISSUE 3): pathological inputs — deeply
// nested expressions, enormous literals, exponential instantiation — must
// degrade to a diagnostic instead of a stack overflow, OOM, or hang. Each
// pipeline phase checks the relevant limit and reports an E0xxx-class
// budget diagnostic when exceeded.
#pragma once

#include <chrono>
#include <cstddef>

namespace otter {

/// Hard ceilings for one compilation. Zero disables an individual limit.
/// Defaults are far above anything a legitimate script needs, but low
/// enough that a hostile input is cut off in well under a second.
struct CompileBudget {
  size_t max_ast_nodes = 1'000'000;   // parser: total expression nodes
  int max_nesting_depth = 200;        // parser: expr + statement recursion
  size_t max_ssa_versions = 500'000;  // infer: total SSA versions per scope
  size_t max_instances = 256;         // infer: function instantiations
  size_t max_lir_instrs = 1'000'000;  // lower: emitted LIR instructions
  double max_wall_seconds = 30.0;     // whole pipeline wall clock
};

/// Per-compilation budget state shared by all phases: the limits plus the
/// wall-clock deadline that starts ticking when compilation begins.
class BudgetGate {
 public:
  explicit BudgetGate(const CompileBudget& limits = {})
      : limits_(limits),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          limits.max_wall_seconds > 0 ? limits.max_wall_seconds
                                                      : 0.0))) {}

  [[nodiscard]] const CompileBudget& limits() const { return limits_; }

  /// True once the wall-clock budget is spent. Cheap enough to call from
  /// per-statement loops; hot per-token paths should amortize with
  /// expired_every().
  [[nodiscard]] bool expired() const {
    if (limits_.max_wall_seconds <= 0) return false;
    return std::chrono::steady_clock::now() >= deadline_;
  }

  /// Amortized deadline check: only consults the clock every `stride`
  /// calls, then latches. Callers pass a per-phase counter reference.
  [[nodiscard]] bool expired_every(size_t& counter, size_t stride = 1024) {
    if (latched_) return true;
    if (++counter % stride != 0) return false;
    latched_ = expired();
    return latched_;
  }

 private:
  CompileBudget limits_;
  std::chrono::steady_clock::time_point deadline_;
  bool latched_ = false;
};

}  // namespace otter
