#include "support/governor.hpp"

#include <cinttypes>
#include <cstdio>

namespace otter::gov {

BudgetExceeded::BudgetExceeded(uint64_t req, uint64_t in_use,
                               uint64_t limit) noexcept
    : requested(req), used(in_use), budget(limit) {
  std::snprintf(msg_, sizeof(msg_),
                "memory budget exceeded: allocation of %" PRIu64
                " bytes with %" PRIu64 " already charged against a budget of %"
                PRIu64 " bytes",
                req, in_use, limit);
}

ResourceGovernor& ResourceGovernor::instance() {
  static ResourceGovernor g;
  return g;
}

void ResourceGovernor::charge(uint64_t bytes) {
  const uint64_t budget = budget_.load(std::memory_order_relaxed);
  uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget != 0 && now > budget) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    denials_.fetch_add(1, std::memory_order_relaxed);
    throw BudgetExceeded(bytes, now - bytes, budget);
  }
  // Advance the high-water mark (racy CAS loop; losers retry).
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void ResourceGovernor::release(uint64_t bytes) noexcept {
  uint64_t prev = used_.load(std::memory_order_relaxed);
  // Clamp at zero: a buffer charged before a window reset may be released
  // after one; the ledger must not wrap to 2^64.
  while (true) {
    uint64_t next = prev >= bytes ? prev - bytes : 0;
    if (used_.compare_exchange_weak(prev, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

GovernorStats ResourceGovernor::stats() const {
  GovernorStats s;
  s.used = used_.load(std::memory_order_relaxed);
  s.peak = peak_.load(std::memory_order_relaxed);
  s.denials = denials_.load(std::memory_order_relaxed);
  s.budget = budget_.load(std::memory_order_relaxed);
  return s;
}

void ResourceGovernor::reset_window() {
  peak_.store(used_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  denials_.store(0, std::memory_order_relaxed);
}

}  // namespace otter::gov
