// Minimal JSON support shared by the diagnostics engine, the otterd
// service protocol, and tooling.
//
// Scope: exactly what the newline-delimited request/response protocol and
// machine-readable diagnostics need — parse a self-contained document into
// a tree of JValue nodes, and render trees back out with RFC 8259-valid
// string escaping. Numbers are doubles (MATLAB semantics all the way down).
//
// String safety: writers must never emit invalid JSON no matter what bytes
// end up inside a message (fuzz-corpus scripts routinely carry raw control
// characters and non-UTF-8 bytes into source snippets). json_escape
// validates UTF-8 as it renders: control characters become \u00XX escapes
// and malformed byte sequences are replaced with U+FFFD, so the output is
// always valid UTF-8 JSON.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace otter::json {

class JValue;
using JArray = std::vector<JValue>;
/// Object members keep insertion order (protocol responses render stably).
using JObject = std::vector<std::pair<std::string, JValue>>;

/// One JSON value: null, bool, number (double), string, array, or object.
class JValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JValue() = default;
  JValue(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  JValue(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  JValue(double n) : kind_(Kind::Number), num_(n) {}  // NOLINT
  JValue(int n) : kind_(Kind::Number), num_(n) {}  // NOLINT
  JValue(long n)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  JValue(unsigned long n)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  JValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}  // NOLINT
  JValue(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT
  JValue(JArray a) : kind_(Kind::Array), arr_(std::move(a)) {}  // NOLINT
  JValue(JObject o) : kind_(Kind::Object), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool(bool dflt = false) const {
    return is_bool() ? bool_ : dflt;
  }
  [[nodiscard]] double as_number(double dflt = 0.0) const {
    return is_number() ? num_ : dflt;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const JArray& as_array() const { return arr_; }
  [[nodiscard]] const JObject& as_object() const { return obj_; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const JValue* get(std::string_view key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Convenience typed accessors for protocol fields.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string dflt = "") const {
    const JValue* v = get(key);
    return (v != nullptr && v->is_string()) ? v->str_ : std::move(dflt);
  }
  [[nodiscard]] double get_number(std::string_view key, double dflt) const {
    const JValue* v = get(key);
    return (v != nullptr && v->is_number()) ? v->num_ : dflt;
  }
  [[nodiscard]] bool get_bool(std::string_view key, bool dflt) const {
    const JValue* v = get(key);
    return (v != nullptr && v->is_bool()) ? v->bool_ : dflt;
  }

  /// Appends a member (objects only; no-op otherwise).
  void set(std::string key, JValue v) {
    if (kind_ == Kind::Object) obj_.emplace_back(std::move(key), std::move(v));
  }

  /// Compact single-line rendering (the protocol is newline-delimited, so
  /// a rendered value never contains a raw newline).
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JArray arr_;
  JObject obj_;
};

/// Builds an object from an initializer list, keeping order.
inline JValue obj(JObject members) { return JValue(std::move(members)); }

/// Escapes `s` as the *contents* of a JSON string literal (no surrounding
/// quotes): ", \, and control characters are escaped, valid UTF-8 passes
/// through unchanged, and invalid UTF-8 bytes are replaced with U+FFFD so
/// the result is always valid JSON regardless of the input bytes.
std::string json_escape(std::string_view s);

/// Parse errors carry a byte offset and a short reason.
struct ParseError {
  size_t offset = 0;
  std::string reason;
};

/// Parses one complete JSON document. Returns nullopt on malformed input
/// (reason in *err when provided). Nesting is capped at `max_depth` so a
/// hostile request cannot overflow the stack.
std::optional<JValue> parse(std::string_view text, ParseError* err = nullptr,
                            int max_depth = 64);

}  // namespace otter::json
