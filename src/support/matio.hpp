// Plain-text matrix files (MATLAB `load` format): one row per line,
// whitespace-separated numbers, every row the same width.
//
// The paper: "If the user's program initializes a variable through external
// file input, a sample data file must be present, so that the compiler can
// determine the type of the variable as well as its rank." The compiler
// reads the file at compile time for inference; the run-time reads it again
// at execution (rank 0 coordinates I/O and broadcasts).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace otter {

struct MatFile {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> data;       // row-major
  bool all_integer = true;        // every value integral (type inference)
};

/// Parses `path`; nullopt when the file is missing or malformed
/// (*error explains why when provided).
std::optional<MatFile> read_mat_file(const std::string& path,
                                     std::string* error = nullptr);

/// Writes a matrix in the same format (tests and examples).
bool write_mat_file(const std::string& path, size_t rows, size_t cols,
                    const std::vector<double>& data);

}  // namespace otter
