#include "driver/kernel.hpp"

#include <limits>
#include <string>
#include <unordered_map>

namespace otter::driver {

namespace {

using lower::LExpr;

bool has_rand(const LExpr& e) {
  if (e.kind == LExpr::Kind::RandScalar) return true;
  if (e.a && has_rand(*e.a)) return true;
  if (e.b && has_rand(*e.b)) return true;
  return false;
}

struct Builder {
  Kernel k;
  std::unordered_map<std::string, uint16_t> mat_slots;
  size_t depth = 0;
  bool ok = true;

  void push(KOp op) {
    k.ops.push_back(op);
    ++depth;
    if (depth > k.max_stack) k.max_stack = depth;
  }

  uint16_t mat_slot(const std::string& name) {
    auto it = mat_slots.find(name);
    if (it != mat_slots.end()) return it->second;
    auto slot = static_cast<uint16_t>(k.mats.size());
    mat_slots.emplace(name, slot);
    k.mats.push_back(name);
    return slot;
  }

  void build(const LExpr& e) {
    if (!ok) return;
    if (k.ops.size() > 4096 || k.mats.size() > 255 || k.scalars.size() > 255) {
      ok = false;  // degenerate tree: let the tree walker handle it
      return;
    }
    switch (e.kind) {
      case LExpr::Kind::Imm: {
        KOp op;
        op.k = KOp::K::PushImm;
        op.imm = e.imm;
        push(op);
        return;
      }
      case LExpr::Kind::MatVar: {
        KOp op;
        op.k = KOp::K::PushMat;
        op.slot = mat_slot(e.var);
        push(op);
        return;
      }
      case LExpr::Kind::ScalarVar:
      case LExpr::Kind::RowsOf:
      case LExpr::Kind::ColsOf:
      case LExpr::Kind::NumelOf:
      case LExpr::Kind::RankId:    // constant for the whole run: slot-safe
      case LExpr::Kind::NProcs: {
        KOp op;
        op.k = KOp::K::PushScalar;
        op.slot = static_cast<uint16_t>(k.scalars.size());
        k.scalars.push_back(&e);
        push(op);
        return;
      }
      case LExpr::Kind::Bin: {
        build(*e.a);
        build(*e.b);
        if (!ok) return;
        KOp op;
        op.k = KOp::K::Bin;
        op.bop = e.bop;
        k.ops.push_back(op);
        --depth;  // two pops, one push
        return;
      }
      case LExpr::Kind::Un: {
        build(*e.a);
        if (!ok) return;
        KOp op;
        op.k = KOp::K::Un;
        op.uop = e.uop;
        k.ops.push_back(op);
        return;
      }
      case LExpr::Kind::RandScalar:
        // A slot would draw once per statement where the tree walker draws
        // per evaluation; refuse so the caller preserves rand semantics.
        ok = false;
        return;
    }
    ok = false;
  }
};

/// Recognises the postfix programs that cover nearly all fused statements
/// in practice (see KPat). Anything else stays Generic.
void classify(Kernel& k) {
  auto as_operand = [](const KOp& op, KOperand& o) -> bool {
    switch (op.k) {
      case KOp::K::PushMat:
        o.k = KOperand::K::Mat;
        o.slot = op.slot;
        return true;
      case KOp::K::PushScalar:
        o.k = KOperand::K::Slot;
        o.slot = op.slot;
        return true;
      case KOp::K::PushImm:
        o.k = KOperand::K::Imm;
        o.imm = op.imm;
        return true;
      case KOp::K::Bin:
      case KOp::K::Un:
        return false;
    }
    return false;
  };
  const std::vector<KOp>& ops = k.ops;
  if (ops.size() == 2 && ops[1].k == KOp::K::Un &&
      as_operand(ops[0], k.o1)) {
    k.pat = KPat::Un1;
    k.puop = ops[1].uop;
    return;
  }
  if (ops.size() == 3 && ops[2].k == KOp::K::Bin &&
      as_operand(ops[0], k.o1) && as_operand(ops[1], k.o2)) {
    k.pat = KPat::Bin2;
    k.pbop = ops[2].bop;
    return;
  }
  if (ops.size() == 5 && ops[3].k == KOp::K::Bin &&
      ops[3].bop == rt::EwBin::Mul && ops[4].k == KOp::K::Bin &&
      (ops[4].bop == rt::EwBin::Add || ops[4].bop == rt::EwBin::Sub) &&
      as_operand(ops[0], k.o1) && as_operand(ops[1], k.o2) &&
      as_operand(ops[2], k.o3)) {
    k.pat = KPat::Axpy;
    k.pbop2 = ops[4].bop;
    return;
  }
}

}  // namespace

Kernel compile_kernel(const lower::LExpr& tree) {
  if (has_rand(tree)) {
    Kernel k;
    k.ok = false;
    return k;
  }
  Builder b;
  b.build(tree);
  b.k.ok = b.ok && !b.k.ops.empty();
  if (b.k.ok) classify(b.k);
  return b.k;
}

}  // namespace otter::driver
