// Compiled element-wise kernels for the direct executor.
//
// The executor used to re-interpret the LExpr tree for every local element
// (one recursive walk plus a hash lookup per matrix/scalar leaf per
// element). A Kernel compiles the tree once into flat postfix code with
// pre-resolved operand slots: matrix leaves become span indices bound once
// per statement execution, scalar leaves become slots evaluated once per
// statement (lowering guarantees an element-wise tree's scalar subtrees are
// Imm/ScalarVar only — anything more complex, including rand, was hoisted
// into its own ScalarAssign), and the per-element work is a tight loop over
// a small value stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lower/lir.hpp"

namespace otter::driver {

/// One postfix step.
struct KOp {
  enum class K : uint8_t {
    PushImm,     ///< push `imm`
    PushScalar,  ///< push pre-evaluated scalar slot `slot`
    PushMat,     ///< push element l of matrix slot `slot`
    Bin,         ///< pop b, pop a, push a `bop` b
    Un,          ///< pop a, push `uop` a
  };
  K k = K::PushImm;
  double imm = 0.0;
  uint16_t slot = 0;
  rt::EwBin bop = rt::EwBin::Add;
  rt::EwUn uop = rt::EwUn::Neg;
};

/// A compiled LExpr tree. `ok == false` means the tree cannot be kernelized
/// (it draws rand, whose per-element semantics a once-per-statement slot
/// would change) and the caller must fall back to tree walking.
struct Kernel {
  std::vector<KOp> ops;
  /// Matrix slot -> variable name, in pre-order-first-leaf order, so
  /// mats.front() is the same matrix the tree-walking executor takes the
  /// output shape from.
  std::vector<std::string> mats;
  /// Scalar slot -> subtree to evaluate once per statement execution.
  std::vector<const lower::LExpr*> scalars;
  size_t max_stack = 0;
  bool ok = false;

  /// Evaluates the postfix program for local element `l`. `mat_ptrs[i]` is
  /// the local buffer of matrix slot i, `scalar_vals[i]` the pre-evaluated
  /// value of scalar slot i, `stack` has room for max_stack doubles.
  [[nodiscard]] double eval(const double* const* mat_ptrs,
                            const double* scalar_vals, double* stack,
                            size_t l) const {
    size_t sp = 0;
    for (const KOp& op : ops) {
      switch (op.k) {
        case KOp::K::PushImm:
          stack[sp++] = op.imm;
          break;
        case KOp::K::PushScalar:
          stack[sp++] = scalar_vals[op.slot];
          break;
        case KOp::K::PushMat:
          stack[sp++] = mat_ptrs[op.slot][l];
          break;
        case KOp::K::Bin:
          stack[sp - 2] = rt::ew_apply_bin(op.bop, stack[sp - 2], stack[sp - 1]);
          --sp;
          break;
        case KOp::K::Un:
          stack[sp - 1] = rt::ew_apply_un(op.uop, stack[sp - 1]);
          break;
      }
    }
    return stack[0];
  }
};

/// Compiles `tree` (element-wise or pure scalar) into postfix form. The
/// result's lifetime is bounded by `tree`'s (scalar slots point into it).
Kernel compile_kernel(const lower::LExpr& tree);

}  // namespace otter::driver
