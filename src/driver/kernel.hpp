// Compiled element-wise kernels for the direct executor.
//
// The executor used to re-interpret the LExpr tree for every local element
// (one recursive walk plus a hash lookup per matrix/scalar leaf per
// element). A Kernel compiles the tree once into flat postfix code with
// pre-resolved operand slots: matrix leaves become span indices bound once
// per statement execution, scalar leaves become slots evaluated once per
// statement (lowering guarantees an element-wise tree's scalar subtrees are
// Imm/ScalarVar only — anything more complex, including rand, was hoisted
// into its own ScalarAssign), and the per-element work is a tight loop over
// a small value stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lower/lir.hpp"

namespace otter::driver {

/// One postfix step.
struct KOp {
  enum class K : uint8_t {
    PushImm,     ///< push `imm`
    PushScalar,  ///< push pre-evaluated scalar slot `slot`
    PushMat,     ///< push element l of matrix slot `slot`
    Bin,         ///< pop b, pop a, push a `bop` b
    Un,          ///< pop a, push `uop` a
  };
  K k = K::PushImm;
  double imm = 0.0;
  uint16_t slot = 0;
  rt::EwBin bop = rt::EwBin::Add;
  rt::EwUn uop = rt::EwUn::Neg;
};

/// One pre-resolved operand of a pattern-specialised kernel: a matrix slot
/// (indexed per element), a scalar slot, or an immediate.
struct KOperand {
  enum class K : uint8_t { Mat, Slot, Imm };
  K k = K::Imm;
  uint16_t slot = 0;
  double imm = 0.0;
};

/// Whole-kernel shapes with dedicated element loops. The postfix programs
/// the fuser produces are overwhelmingly a handful of shapes (a single
/// binary op, a single unary op, or an axpy-style `a +- s .* b`); running
/// those through the generic per-element postfix interpreter costs several
/// dispatches plus stack traffic per element. Classified once at kernel
/// compile time; Generic falls back to the interpreter.
enum class KPat : uint8_t {
  Generic,
  Bin2,  ///< dst[l] = o1 bop o2
  Un1,   ///< dst[l] = uop(o1)
  Axpy,  ///< dst[l] = o1 bop2 (o2 * o3), bop2 in {Add, Sub}
};

/// A compiled LExpr tree. `ok == false` means the tree cannot be kernelized
/// (it draws rand, whose per-element semantics a once-per-statement slot
/// would change) and the caller must fall back to tree walking.
struct Kernel {
  std::vector<KOp> ops;
  /// Matrix slot -> variable name, in pre-order-first-leaf order, so
  /// mats.front() is the same matrix the tree-walking executor takes the
  /// output shape from.
  std::vector<std::string> mats;
  /// Scalar slot -> subtree to evaluate once per statement execution.
  std::vector<const lower::LExpr*> scalars;
  size_t max_stack = 0;
  bool ok = false;

  /// Pattern specialisation (see KPat). Operand order and the exact
  /// ew_apply_* call sequence match the postfix interpreter, so the two
  /// paths produce bit-identical results.
  KPat pat = KPat::Generic;
  KOperand o1, o2, o3;
  rt::EwBin pbop = rt::EwBin::Add;   ///< Bin2's operator
  rt::EwBin pbop2 = rt::EwBin::Add;  ///< Axpy's outer Add/Sub
  rt::EwUn puop = rt::EwUn::Neg;     ///< Un1's operator

  /// Evaluates the postfix program for local element `l`. `mat_ptrs[i]` is
  /// the local buffer of matrix slot i, `scalar_vals[i]` the pre-evaluated
  /// value of scalar slot i, `stack` has room for max_stack doubles.
  [[nodiscard]] double eval(const double* const* mat_ptrs,
                            const double* scalar_vals, double* stack,
                            size_t l) const {
    size_t sp = 0;
    for (const KOp& op : ops) {
      switch (op.k) {
        case KOp::K::PushImm:
          stack[sp++] = op.imm;
          break;
        case KOp::K::PushScalar:
          stack[sp++] = scalar_vals[op.slot];
          break;
        case KOp::K::PushMat:
          stack[sp++] = mat_ptrs[op.slot][l];
          break;
        case KOp::K::Bin:
          stack[sp - 2] = rt::ew_apply_bin(op.bop, stack[sp - 2], stack[sp - 1]);
          --sp;
          break;
        case KOp::K::Un:
          stack[sp - 1] = rt::ew_apply_un(op.uop, stack[sp - 1]);
          break;
      }
    }
    return stack[0];
  }

  /// Runs the kernel over all `n` local elements into `dst`. Equivalent to
  /// calling eval() for every l in [0, n) but dispatches the pattern once
  /// per statement instead of interpreting postfix per element. Safe when
  /// dst aliases an operand buffer: element l is fully read before dst[l]
  /// is written, matching the per-element loop's aliasing contract.
  void run(double* dst, const double* const* mat_ptrs,
           const double* scalar_vals, double* stack, size_t n) const {
    // Non-matrix operands walk a zero-stride pointer so every pattern loop
    // is a plain pointer walk with no per-element kind dispatch.
    auto bind = [&](const KOperand& o, double& imm_box,
                    size_t& step) -> const double* {
      switch (o.k) {
        case KOperand::K::Mat:
          step = 1;
          return mat_ptrs[o.slot];
        case KOperand::K::Slot:
          step = 0;
          return &scalar_vals[o.slot];
        case KOperand::K::Imm:
          break;
      }
      step = 0;
      imm_box = o.imm;
      return &imm_box;
    };
    double c1 = 0.0, c2 = 0.0, c3 = 0.0;
    size_t s1 = 0, s2 = 0, s3 = 0;
    switch (pat) {
      case KPat::Bin2: {
        const double* p1 = bind(o1, c1, s1);
        const double* p2 = bind(o2, c2, s2);
        for (size_t l = 0; l < n; ++l, p1 += s1, p2 += s2) {
          dst[l] = rt::ew_apply_bin(pbop, *p1, *p2);
        }
        return;
      }
      case KPat::Un1: {
        const double* p1 = bind(o1, c1, s1);
        for (size_t l = 0; l < n; ++l, p1 += s1) {
          dst[l] = rt::ew_apply_un(puop, *p1);
        }
        return;
      }
      case KPat::Axpy: {
        const double* p1 = bind(o1, c1, s1);
        const double* p2 = bind(o2, c2, s2);
        const double* p3 = bind(o3, c3, s3);
        for (size_t l = 0; l < n; ++l, p1 += s1, p2 += s2, p3 += s3) {
          dst[l] = rt::ew_apply_bin(
              pbop2, *p1, rt::ew_apply_bin(rt::EwBin::Mul, *p2, *p3));
        }
        return;
      }
      case KPat::Generic:
        break;
    }
    for (size_t l = 0; l < n; ++l) {
      dst[l] = eval(mat_ptrs, scalar_vals, stack, l);
    }
  }
};

/// Compiles `tree` (element-wise or pure scalar) into postfix form. The
/// result's lifetime is bounded by `tree`'s (scalar slots point into it).
Kernel compile_kernel(const lower::LExpr& tree);

}  // namespace otter::driver
