// Coordinated checkpoint/restart for SPMD runs.
//
// The executor reaches a quiescent point between two top-level script
// statements: no messages are in flight once every rank has arrived (all
// communication is synchronous matched pairs, and every rank executes the
// same top-level statement sequence). At each interval boundary the ranks
// serialize their state (variable store, RNG cursor, comm counters),
// deposit it here, and a barrier-framed commit has rank 0 write one
// generation via snap::write_checkpoint. On restart the coordinator loads
// the newest valid generation (snap::load_latest's recovery ladder) before
// the ranks spawn, and each rank rebuilds its frame from its own blob.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "minimpi/comm.hpp"
#include "support/snapshot.hpp"

namespace otter::driver {

/// User-facing checkpoint policy (otterc --checkpoint=N/--checkpoint-dir/
/// --resume, otterd request fields).
struct CheckpointOptions {
  uint32_t interval = 0;  ///< top-level statements between snapshots (0 = off)
  std::string dir;        ///< generation directory (created on first write)
  bool resume = false;    ///< restore the newest valid generation first

  [[nodiscard]] bool enabled() const { return interval > 0 && !dir.empty(); }
};

/// Shared rendezvous for one SPMD run's checkpoints. Created by
/// run_parallel; every rank holds the same pointer via ExecOptions.
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(CheckpointOptions opts, int nranks,
                        std::function<std::string()> capture_output);

  /// Pre-run restore (single-threaded, before ranks spawn). Returns true
  /// when a valid checkpoint with a matching rank count was loaded;
  /// rejected candidates leave E5005 warnings behind.
  bool load();

  [[nodiscard]] bool resumed() const { return resumed_; }
  [[nodiscard]] uint64_t resume_statement() const {
    return loaded_ ? loaded_->meta.statement : 0;
  }
  [[nodiscard]] uint32_t interval() const { return opts_.interval; }
  [[nodiscard]] const std::vector<std::byte>* rank_state(int rank) const;
  [[nodiscard]] const std::string& output_prefix() const;

  /// Collective commit of the boundary before `statement`: each rank
  /// deposits its serialized state; after a barrier rank 0 writes the
  /// generation file + manifest; a second barrier releases the ranks. A
  /// failed write degrades to an E5005 warning — the run continues.
  void commit(mpi::Comm& comm, uint64_t statement,
              std::vector<std::byte> state);

  [[nodiscard]] uint64_t generations_written() const { return written_; }
  std::vector<std::string> take_warnings();

 private:
  CheckpointOptions opts_;
  int nranks_;
  std::function<std::string()> capture_output_;
  std::optional<snap::LoadedCheckpoint> loaded_;
  bool resumed_ = false;
  uint64_t next_generation_ = 1;
  uint64_t written_ = 0;
  std::mutex mu_;
  std::vector<std::vector<std::byte>> deposits_;
  std::vector<std::string> warnings_;
};

}  // namespace otter::driver
