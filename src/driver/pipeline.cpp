#include "driver/pipeline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include <time.h>

#include "analysis/verify.hpp"
#include "interp/interp.hpp"
#include "support/governor.hpp"
#include "support/rng.hpp"
#include "vm/bcgen.hpp"

namespace otter::driver {

std::unique_ptr<CompileResult> compile_script(
    const std::string& source, const sema::MFileLoader& loader,
    const lower::LowerOptions& opts) {
  CompileOptions copts;
  copts.lower = opts;
  copts.opt.level = 0;  // raw lowering output for callers of this overload
  return compile_script(source, loader, copts);
}

std::unique_ptr<CompileResult> compile_script(const std::string& source,
                                              const sema::MFileLoader& loader,
                                              const CompileOptions& opts) {
  auto r = std::make_unique<CompileResult>();
  r->diags.set_max_errors(opts.max_errors);
  // One gate per compilation: every pass shares the wall-clock deadline and
  // the structural limits, so pathological inputs degrade to a diagnostic.
  BudgetGate gate(opts.budget);
  ParsedFile f = parse_string(source, r->sm, r->diags, opts.source_name, &gate);
  if (r->diags.has_errors()) return r;
  r->prog.script = std::move(f.script);
  for (auto& fn : f.functions) {
    r->prog.functions.emplace(fn->name, std::move(fn));
  }
  if (!sema::resolve_program(r->prog, r->sm, r->diags, loader)) return r;
  sema::InferOptions iopts;
  iopts.strict = opts.strict_infer;
  iopts.budget = &gate;
  r->inf = sema::infer_program(r->prog, r->diags, iopts);
  if (r->diags.has_errors()) return r;
  lower::LowerOptions lopts = opts.lower;
  lopts.budget = &gate;
  r->lir = lower::lower_program(r->prog, r->inf, r->diags, lopts);
  // Abstract interpretation runs on the *pre-optimizer* program: findings
  // keep their original source locations no matter what the optimizer
  // rewrites later, and guard proofs feed the -O2 elimination pass.
  bool elim = opts.opt.level >= 2 && opts.opt.guard_elim;
  if (!r->diags.has_errors() && (opts.analyze || elim)) {
    r->absint = analysis::run_absint(r->prog, r->inf, r->lir);
  }
  if (!r->diags.has_errors() && opts.opt.level > 0) {
    if (opts.keep_preopt) r->preopt_lir = lower::dump_lir(r->lir);
    lower::OptOptions oo = opts.opt;
    oo.guard_proofs = r->absint.proofs;
    r->opt_report = lower::run_opt(r->lir, oo);
  }
  // Structural self-check on what will actually run (post-optimizer): any
  // E6xxx report here is a compiler bug made visible, not a user error.
  if (opts.verify_lir && !r->diags.has_errors()) {
    analysis::verify_lir(r->lir, r->diags);
    analysis::verify_guard_elimination(r->opt_report, r->absint.proofs,
                                       r->diags);
  }
  r->ok = !r->diags.has_errors();
  return r;
}

sema::MFileLoader dir_loader(const std::string& dir) {
  return [dir](const std::string& name) -> std::optional<std::string> {
    std::ifstream in(dir + "/" + name + ".m", std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
}

ParallelRun run_parallel(const lower::LProgram& lir,
                         const mpi::MachineProfile& profile, int nranks,
                         const ExecOptions& opts) {
  ParallelRun result;
  std::ostringstream out;
  ExecOptions eopts = opts;
  // Install the per-request matrix-memory budget for the lifetime of the
  // run; allocations past it throw gov::BudgetExceeded → E5006 on the
  // offending rank/statement instead of OOM-killing the process.
  gov::ScopedBudget budget(opts.spmd.mem_budget_bytes);
  std::unique_ptr<CheckpointCoordinator> co;
  if (opts.ckpt.enabled()) {
    co = std::make_unique<CheckpointCoordinator>(
        opts.ckpt, nranks, [&out] { return out.str(); });
    if (opts.ckpt.resume && co->load()) {
      // Statements before the checkpoint will not re-execute; their output
      // already happened. Seeding the stream with the captured prefix is
      // what makes a resumed run's output bitwise-identical to a fault-free
      // one.
      out << co->output_prefix();
      result.resumed = true;
      result.resumed_statement = co->resume_statement();
    }
    eopts.checkpoint = co.get();
  }
  // Compile the bytecode module once, outside the rank threads: the module
  // is immutable and shared, so N ranks must not each pay (or race on)
  // compilation. Tree-tier runs skip it entirely.
  vm::BcModule bytecode;
  if (eopts.backend != ExecBackend::Tree && eopts.bytecode == nullptr) {
    bytecode = vm::compile_bytecode(lir);
    eopts.bytecode = &bytecode;
  }
  result.times = mpi::run_spmd(
      profile, nranks,
      [&](mpi::Comm& comm) { execute_lir(lir, comm, out, eopts); }, opts.spmd);
  result.output = out.str();
  if (co) {
    result.checkpoints_written = co->generations_written();
    for (std::string& w : co->take_warnings())
      result.warnings.push_back(std::move(w));
  }
  return result;
}

double retry_backoff_for(const RetryOptions& retry, int attempt) {
  double base = retry.backoff;
  for (int k = 1; k < attempt; ++k) base *= retry.backoff_factor;
  if (retry.backoff_cap > 0) base = std::min(base, retry.backoff_cap);
  if (retry.jitter > 0) {
    // Deterministic jitter: position `attempt` of the seeded LCG stream, so
    // the schedule is reproducible yet decorrelated across seeds.
    double u = Lcg::value_at(retry.jitter_seed,
                             static_cast<uint64_t>(attempt));
    base *= 1.0 + retry.jitter * (2.0 * u - 1.0);
  }
  return base;
}

bool failure_is_retryable(const mpi::SpmdFailure& e,
                          const mpi::SpmdOptions& opts) {
  // A session whose deadline passed (or whose cancel flag is raised) kills
  // every subsequent attempt the same way, wherever the abort surfaced.
  if (opts.expired()) return false;
  const mpi::RankFailure& p = e.first();
  if (!p.primary) return true;  // pure sympathy teardown: timing-dependent
  // Deadline/cancel and shape guards recur no matter what changed.
  if (p.code == "E5003" || p.code == "E5004") return false;
  // Without fault injection the scheduler is deterministic: any coded
  // runtime failure will reproduce bit-for-bit on the next attempt.
  if (!p.code.empty() && !opts.fault.enabled()) return false;
  return true;
}

RetryRun run_with_retries(const lower::LProgram& lir,
                          const mpi::MachineProfile& profile, int nranks,
                          const ExecOptions& opts, const RetryOptions& retry) {
  RetryRun result;
  uint64_t base_seed = opts.spmd.fault.seed;
  bool crash_fired = false;
  for (int attempt = 1; attempt <= std::max(1, retry.max_attempts); ++attempt) {
    result.attempts = attempt;
    ExecOptions eopts = opts;
    if (retry.reseed_faults && attempt > 1 && opts.spmd.fault.enabled()) {
      // A fresh seed models a transient network: probabilistic drops /
      // corruption land elsewhere, while crash_rank faults (permanent
      // failures) still fire and keep the run failing.
      eopts.spmd.fault.seed = base_seed + static_cast<uint64_t>(attempt - 1);
    }
    if (attempt > 1 && opts.ckpt.enabled()) {
      // Resume from the newest valid checkpoint instead of recomputing.
      eopts.ckpt.resume = true;
      // An injected crash that already fired models a one-shot node
      // failure: the restarted run gets fresh hardware. Leaving it armed
      // would re-kill every resume at the same op and never converge.
      if (crash_fired) eopts.spmd.fault.crash_rank = -1;
    }
    try {
      result.run = run_parallel(lir, profile, nranks, eopts);
      result.ok = true;
      // Charge the accumulated backoff to every rank: in virtual time the
      // retries happened sequentially after the failed attempts.
      for (double& t : result.run.times.vtimes) t += result.backoff_vtime;
      return result;
    } catch (const mpi::SpmdFailure& e) {
      result.failures.push_back({attempt, e.what(), e.first().code});
      if (e.first().primary &&
          e.first().what.find("fault injection:") != std::string::npos) {
        crash_fired = true;
      }
      if (!failure_is_retryable(e, opts.spmd)) {
        result.non_retryable = true;
        break;
      }
      result.backoff_vtime += retry_backoff_for(retry, attempt);
    }
  }
  return result;
}

namespace {
double thread_cpu_seconds() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}
}  // namespace

InterpRun run_interpreter(const std::string& source,
                          const sema::MFileLoader& loader, uint64_t rand_seed) {
  SourceManager sm;
  DiagEngine diags(&sm);
  ParsedFile f = parse_string(source, sm, diags, "<script>");
  if (diags.has_errors()) {
    throw std::runtime_error("parse error:\n" + diags.to_string());
  }
  Program prog;
  prog.script = std::move(f.script);
  for (auto& fn : f.functions) prog.functions.emplace(fn->name, std::move(fn));
  // Resolve purely to pull in user M-files; the interpreter handles dynamic
  // binding itself.
  sema::resolve_program(prog, sm, diags, loader);
  if (diags.has_errors()) {
    throw std::runtime_error("resolve error:\n" + diags.to_string());
  }

  InterpRun run;
  std::ostringstream out;
  interp::Interp in(prog, out);
  in.seed_rng(rand_seed);
  double t0 = thread_cpu_seconds();
  in.run();
  run.cpu_seconds = thread_cpu_seconds() - t0;
  run.output = out.str();
  return run;
}

}  // namespace otter::driver
