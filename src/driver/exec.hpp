// Direct SPMD executor: interprets LIR against the distributed run-time
// library under minimpi. Semantically identical to the generated C code
// (both call the same run-time functions); used by tests, examples, and the
// benchmark harness without needing an external C compiler.
//
// Two tiers share this entry point: the original tree walker (the -O0
// differential-fuzzing reference) and the register-based bytecode VM
// (src/vm/, the default at -O1/-O2). Both produce identical observable
// behaviour; ExecOptions::backend selects.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/checkpoint.hpp"
#include "lower/lir.hpp"
#include "minimpi/comm.hpp"

namespace otter::vm {
struct BcModule;
struct VmStats;
}  // namespace otter::vm

namespace otter::driver {

/// Execution tier. `Auto` resolves to the bytecode VM — the modern default;
/// callers that carry an opt level (otterc, otterd) resolve it themselves
/// (-O0 -> Tree, -O1/-O2 -> Vm) before execution so the tree walker stays
/// the -O0 reference tier.
enum class ExecBackend : uint8_t { Auto, Tree, Vm };

struct ExecOptions {
  uint64_t rand_seed = 1;
  rt::Dist dist = rt::Dist::RowBlock;  // data-distribution strategy
  /// Evaluate element-wise/scalar trees through compiled postfix kernels
  /// with output-buffer reuse (see driver/kernel.hpp). Off = the original
  /// per-element tree walk, kept for benchmark baselines and differentials.
  bool kernels = true;
  /// Failure handling + fault injection for the surrounding SPMD run
  /// (consumed by run_parallel / the cc runner, not per-rank execution).
  mpi::SpmdOptions spmd;
  /// Checkpoint/restart policy; consumed by run_parallel, which creates the
  /// shared coordinator below when enabled.
  CheckpointOptions ckpt;
  /// Shared checkpoint rendezvous for the current run. Set internally by
  /// run_parallel — per-rank execution deposits snapshots through it and
  /// restores its frame from it on resume. Leave null when calling
  /// execute_lir directly.
  CheckpointCoordinator* checkpoint = nullptr;
  /// Execution tier (see ExecBackend).
  ExecBackend backend = ExecBackend::Auto;
  /// Precompiled bytecode for the VM tier (borrowed; must have been
  /// compiled from the same LProgram). run_parallel compiles the module
  /// once before spawning ranks; when null and the VM is selected,
  /// execute_lir compiles one privately.
  const vm::BcModule* bytecode = nullptr;
  /// Optional inline-cache counter sink for the VM tier (shared across
  /// ranks; flushed once per rank at run end).
  vm::VmStats* vm_stats = nullptr;
};

/// Runs the lowered program as this rank's part of the SPMD computation.
/// Only rank 0 writes to `out`. Throws rt::RtError / mpi::MpiError on
/// run-time failures; rt::RtError is re-raised with rank and statement
/// context ("rank 3: line 12 (matmul): …") so a parallel failure names its
/// origin.
void execute_lir(const lower::LProgram& prog, mpi::Comm& comm,
                 std::ostream& out, const ExecOptions& opts = {});

/// The MATLAB-style fprintf rendering loop shared by the execution tiers
/// (and mirroring the interpreter's): the format string is consumed
/// repeatedly until the flattened scalar argument stream is exhausted,
/// backslash escapes and %% are expanded, and %d/%i convert through
/// long long.
void fprintf_stream(std::ostream& out, const std::string& fmt,
                    const std::vector<double>& data);

}  // namespace otter::driver
