// Direct SPMD executor: interprets LIR against the distributed run-time
// library under minimpi. Semantically identical to the generated C code
// (both call the same run-time functions); used by tests, examples, and the
// benchmark harness without needing an external C compiler.
#pragma once

#include <iosfwd>

#include "driver/checkpoint.hpp"
#include "lower/lir.hpp"
#include "minimpi/comm.hpp"

namespace otter::driver {

struct ExecOptions {
  uint64_t rand_seed = 1;
  rt::Dist dist = rt::Dist::RowBlock;  // data-distribution strategy
  /// Evaluate element-wise/scalar trees through compiled postfix kernels
  /// with output-buffer reuse (see driver/kernel.hpp). Off = the original
  /// per-element tree walk, kept for benchmark baselines and differentials.
  bool kernels = true;
  /// Failure handling + fault injection for the surrounding SPMD run
  /// (consumed by run_parallel / the cc runner, not per-rank execution).
  mpi::SpmdOptions spmd;
  /// Checkpoint/restart policy; consumed by run_parallel, which creates the
  /// shared coordinator below when enabled.
  CheckpointOptions ckpt;
  /// Shared checkpoint rendezvous for the current run. Set internally by
  /// run_parallel — per-rank execution deposits snapshots through it and
  /// restores its frame from it on resume. Leave null when calling
  /// execute_lir directly.
  CheckpointCoordinator* checkpoint = nullptr;
};

/// Runs the lowered program as this rank's part of the SPMD computation.
/// Only rank 0 writes to `out`. Throws rt::RtError / mpi::MpiError on
/// run-time failures; rt::RtError is re-raised with rank and statement
/// context ("rank 3: line 12 (matmul): …") so a parallel failure names its
/// origin.
void execute_lir(const lower::LProgram& prog, mpi::Comm& comm,
                 std::ostream& out, const ExecOptions& opts = {});

}  // namespace otter::driver
