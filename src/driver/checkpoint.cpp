#include "driver/checkpoint.hpp"

#include <utility>

namespace otter::driver {

CheckpointCoordinator::CheckpointCoordinator(
    CheckpointOptions opts, int nranks,
    std::function<std::string()> capture_output)
    : opts_(std::move(opts)),
      nranks_(nranks),
      capture_output_(std::move(capture_output)),
      deposits_(static_cast<size_t>(nranks)) {}

bool CheckpointCoordinator::load() {
  auto ck = snap::load_latest(opts_.dir, &warnings_);
  if (!ck) return false;
  if (ck->meta.nranks != static_cast<uint32_t>(nranks_)) {
    warnings_.push_back(
        "[E5005] checkpoint '" + ck->file + "' was taken with " +
        std::to_string(ck->meta.nranks) + " ranks but this run has " +
        std::to_string(nranks_) + "; starting fresh");
    return false;
  }
  loaded_ = std::move(*ck);
  resumed_ = true;
  next_generation_ = loaded_->meta.generation + 1;
  return true;
}

const std::vector<std::byte>* CheckpointCoordinator::rank_state(
    int rank) const {
  if (!loaded_ || rank < 0 ||
      static_cast<size_t>(rank) >= loaded_->rank_state.size())
    return nullptr;
  return &loaded_->rank_state[static_cast<size_t>(rank)];
}

const std::string& CheckpointCoordinator::output_prefix() const {
  static const std::string empty;
  return loaded_ ? loaded_->output_prefix : empty;
}

void CheckpointCoordinator::commit(mpi::Comm& comm, uint64_t statement,
                                   std::vector<std::byte> state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    deposits_[static_cast<size_t>(comm.rank())] = std::move(state);
  }
  // Barrier 1: every rank has finished the preceding statement and
  // deposited — the network is quiescent and the deposit set is complete.
  comm.barrier();
  if (comm.rank() == 0) {
    snap::CheckpointMeta meta;
    meta.generation = next_generation_;
    meta.statement = statement;
    meta.nranks = static_cast<uint32_t>(nranks_);
    meta.interval = opts_.interval;
    try {
      snap::write_checkpoint(opts_.dir, meta, deposits_, capture_output_());
      ++next_generation_;
      ++written_;
    } catch (const snap::SnapshotError& e) {
      // Durability is best-effort: a full disk must not kill a healthy run.
      std::lock_guard<std::mutex> lock(mu_);
      warnings_.push_back(std::string("[E5005] checkpoint write failed: ") +
                          e.what());
    }
  }
  // Barrier 2: the generation is on disk (or abandoned) before any rank may
  // race ahead and start depositing the next one.
  comm.barrier();
}

std::vector<std::string> CheckpointCoordinator::take_warnings() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(warnings_, {});
}

}  // namespace otter::driver
