// Whole-compiler pipeline: parse → resolve (pass 2) → SSA + inference
// (pass 3) → lowering with expression rewriting, owner guards and peephole
// (passes 4–6) → execution (direct SPMD executor, or C emission).
#pragma once

#include <memory>
#include <string>

#include "driver/exec.hpp"
#include "frontend/parser.hpp"
#include "lower/lower.hpp"
#include "minimpi/comm.hpp"
#include "sema/infer.hpp"
#include "sema/resolve.hpp"

namespace otter::driver {

struct CompileResult {
  SourceManager sm;
  DiagEngine diags{&sm};
  Program prog;
  sema::InferResult inf;
  lower::LProgram lir;
  bool ok = false;
};

/// Compiles a MATLAB script through every pass. `loader` supplies user
/// M-files (see dir_loader). Check `->ok` / `->diags` before using `lir`.
std::unique_ptr<CompileResult> compile_script(
    const std::string& source, const sema::MFileLoader& loader = {},
    const lower::LowerOptions& opts = {});

/// M-file loader that searches `dir` for `<name>.m`.
sema::MFileLoader dir_loader(const std::string& dir);

struct ParallelRun {
  std::string output;         // rank-0 program output
  mpi::RunResult times;       // per-rank virtual times
};

/// Runs compiled LIR on `nranks` ranks of `profile` via the direct executor.
ParallelRun run_parallel(const lower::LProgram& lir,
                         const mpi::MachineProfile& profile, int nranks,
                         const ExecOptions& opts = {});

struct InterpRun {
  std::string output;
  double cpu_seconds = 0.0;   // single-CPU time of the interpreter
};

/// Runs the same source through the baseline interpreter (the paper's
/// "MathWorks interpreter" stand-in), measuring CPU seconds.
InterpRun run_interpreter(const std::string& source,
                          const sema::MFileLoader& loader = {},
                          uint64_t rand_seed = 1);

}  // namespace otter::driver
