// Whole-compiler pipeline: parse → resolve (pass 2) → SSA + inference
// (pass 3) → lowering with expression rewriting, owner guards and peephole
// (passes 4–6) → execution (direct SPMD executor, or C emission).
#pragma once

#include <memory>
#include <string>

#include "analysis/absint.hpp"
#include "driver/exec.hpp"
#include "frontend/parser.hpp"
#include "lower/lower.hpp"
#include "lower/opt.hpp"
#include "minimpi/comm.hpp"
#include "sema/infer.hpp"
#include "sema/resolve.hpp"

namespace otter::driver {

struct CompileResult {
  SourceManager sm;
  DiagEngine diags{&sm};
  Program prog;
  sema::InferResult inf;
  lower::LProgram lir;            ///< post-optimizer LIR (what runs)
  std::string preopt_lir;         ///< dump before run_opt (keep_preopt only)
  lower::OptReport opt_report;    ///< what the optimizer did (empty at -O0)
  /// Abstract-interpretation results (guard proofs + W3208-W3210 findings).
  /// Populated when `analyze` is set or guard elimination ran at -O2; the
  /// pipeline never reports the findings itself — tools decide via
  /// analysis::report_absint.
  analysis::AbsintResult absint;
  bool ok = false;
};

/// Full compile configuration: pass options plus the crash-safety knobs
/// (resource budgets, strict-inference mode, and the diagnostic cap).
struct CompileOptions {
  lower::LowerOptions lower;
  lower::OptOptions opt;     ///< optimizer pipeline; level 2 is the default
  CompileBudget budget;      ///< resource limits shared by every pass
  bool strict_infer = false; ///< unresolvable shapes are errors, not guards
  size_t max_errors = 0;     ///< cap stored error diagnostics (0 = unlimited)
  bool verify_lir = true;    ///< run the structural LIR verifier (post-opt)
  bool keep_preopt = false;  ///< record the pre-optimizer dump (--dump-lir)
  bool analyze = false;      ///< run absint even when guard-elim would not
  std::string source_name = "<script>";  ///< buffer name for diagnostics
};

/// Compiles a MATLAB script through every pass. `loader` supplies user
/// M-files (see dir_loader). Check `->ok` / `->diags` before using `lir`.
/// This convenience overload keeps the optimizer off (level 0) so callers
/// inspecting raw lowering output see it unchanged; use the CompileOptions
/// overload for the full default pipeline (-O2).
std::unique_ptr<CompileResult> compile_script(
    const std::string& source, const sema::MFileLoader& loader = {},
    const lower::LowerOptions& opts = {});

/// Overload taking the full configuration (budgets, strict inference,
/// error cap). The LowerOptions overload forwards here with defaults.
std::unique_ptr<CompileResult> compile_script(const std::string& source,
                                              const sema::MFileLoader& loader,
                                              const CompileOptions& opts);

/// M-file loader that searches `dir` for `<name>.m`.
sema::MFileLoader dir_loader(const std::string& dir);

struct ParallelRun {
  std::string output;         // rank-0 program output
  mpi::RunResult times;       // per-rank virtual times
  // Checkpoint/restart observability (all zero when ckpt is disabled):
  bool resumed = false;             // state was restored from a checkpoint
  uint64_t resumed_statement = 0;   // first statement executed after resume
  uint64_t checkpoints_written = 0; // generations committed by this run
  std::vector<std::string> warnings;  // E5005 recovery-ladder warnings
};

/// Runs compiled LIR on `nranks` ranks of `profile` via the direct executor.
/// `opts.spmd` configures the watchdog deadline and fault injection; on any
/// rank failure an mpi::SpmdFailure aggregating every rank's outcome is
/// thrown.
ParallelRun run_parallel(const lower::LProgram& lir,
                         const mpi::MachineProfile& profile, int nranks,
                         const ExecOptions& opts = {});

/// Retry policy for run_with_retries. Backoff is charged in *virtual* time
/// (added to every rank's clock of the successful run), mirroring how the
/// virtual-time model accounts for everything else — no wall sleeping.
///
/// The schedule is capped exponential with deterministic jitter: attempt k
/// waits min(backoff * factor^(k-1), backoff_cap), scaled by a jitter
/// factor drawn from the seeded LCG stream — so many clients retrying the
/// same failure decorrelate, yet a given (seed, attempt) pair always
/// produces the same wait, keeping tests and benchmarks reproducible.
struct RetryOptions {
  int max_attempts = 3;
  double backoff = 0.5;         ///< virtual seconds before the first retry
  double backoff_factor = 2.0;  ///< multiplier per subsequent retry
  double backoff_cap = 30.0;    ///< ceiling on one retry's backoff (0 = none)
  /// Fraction of each backoff randomized: wait *= 1 + jitter*(2u-1) with
  /// u in [0,1) drawn deterministically from jitter_seed. 0 disables.
  double jitter = 0.1;
  uint64_t jitter_seed = 0x0771e55;
  /// Perturb the fault-injection seed on each attempt so scripted
  /// *probabilistic* faults behave like transient failures (a retry can
  /// succeed), while scripted crashes stay deterministic.
  bool reseed_faults = true;
};

/// The virtual-time backoff run_with_retries charges before retry `attempt`
/// (1-based: the wait after the attempt-th failure). Exposed so tests and
/// the daemon's retry accounting agree with the implementation.
double retry_backoff_for(const RetryOptions& retry, int attempt);

/// One failed attempt inside run_with_retries.
struct AttemptFailure {
  int attempt = 0;      // 1-based
  std::string what;     // the SpmdFailure report
  std::string code;     // primary failure's diag code when it carried one
};

struct RetryRun {
  ParallelRun run;      // valid only when ok
  bool ok = false;
  int attempts = 0;     // attempts consumed (successful one included)
  double backoff_vtime = 0.0;  // total virtual backoff charged
  std::vector<AttemptFailure> failures;  // one entry per failed attempt
  /// True when the loop stopped early because the failure was classified
  /// deterministic (same inputs, same result — a retry cannot help).
  bool non_retryable = false;
};

/// Deterministic-failure classifier for the retry loop. An expired session
/// (deadline passed / cancel raised) is never retried. A primary failure
/// that carries a stable code from a run *without* fault injection will
/// recur identically on every attempt (the scheduler is deterministic), as
/// will E5003 shape guards and E5004 deadline/cancel regardless of faults;
/// uncoded failures (injected crashes, watchdog, deadlock) stay retryable.
bool failure_is_retryable(const mpi::SpmdFailure& e,
                          const mpi::SpmdOptions& opts);

/// Runs the program like run_parallel but re-runs failed executions with
/// exponential backoff in virtual time, reporting per-attempt statistics.
/// Never throws SpmdFailure: exhausted retries return ok == false with the
/// failure log filled in. Non-retryable failures (see failure_is_retryable)
/// short-circuit the loop. When `opts.ckpt` is enabled, retry attempts
/// resume from the newest valid checkpoint instead of recomputing, and an
/// injected crash that already fired is cleared (a restart models fresh
/// hardware — the "node" that crashed does not crash again).
RetryRun run_with_retries(const lower::LProgram& lir,
                          const mpi::MachineProfile& profile, int nranks,
                          const ExecOptions& opts = {},
                          const RetryOptions& retry = {});

struct InterpRun {
  std::string output;
  double cpu_seconds = 0.0;   // single-CPU time of the interpreter
};

/// Runs the same source through the baseline interpreter (the paper's
/// "MathWorks interpreter" stand-in), measuring CPU seconds.
InterpRun run_interpreter(const std::string& source,
                          const sema::MFileLoader& loader = {},
                          uint64_t rand_seed = 1);

}  // namespace otter::driver
