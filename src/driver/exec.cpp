#include "driver/exec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "driver/kernel.hpp"
#include "support/rng.hpp"
#include "vm/bcgen.hpp"
#include "vm/vm.hpp"

namespace otter::driver {

using lower::LExpr;
using lower::LFunction;
using lower::LInstr;
using lower::LOp;
using lower::LOperand;
using lower::LProgram;
using lower::RedKind;
using rt::DMat;

namespace {

[[noreturn]] void fail(const std::string& msg) { throw rt::RtError(msg); }

struct Frame {
  std::unordered_map<std::string, double> scalars;
  std::unordered_map<std::string, DMat> mats;
};

enum class Flow { Normal, Break, Continue, Return };

class Executor {
 public:
  Executor(const LProgram& prog, mpi::Comm& comm, std::ostream& out,
           const ExecOptions& opts)
      : prog_(prog), comm_(comm), out_(out), opts_(opts) {
    for (const LFunction& fn : prog.functions) fns_[fn.mangled] = &fn;
  }

  void run() {
    try {
      Frame frame;
      declare(frame, prog_.script_vars);
      size_t start = 0;
      CheckpointCoordinator* co = opts_.checkpoint;
      if (co != nullptr && co->resumed()) start = restore_state(frame, *co);
      exec_script(prog_.script, frame, start);
    } catch (const rt::RtError& e) {
      // Attach the failing statement + source location; the rank is
      // attributed by run_spmd's per-rank aggregation, so repeating it here
      // would double up.
      SourceLoc loc = e.loc.valid() ? e.loc
                      : cur_ != nullptr ? cur_->loc
                                        : SourceLoc{};
      throw rt::RtError(statement_context() + e.what(), loc, e.code);
    } catch (const std::bad_alloc& e) {
      // Allocation failure — a governor budget denial (gov::BudgetExceeded
      // carries the accounting) or true host exhaustion. Either way it
      // becomes the coded, statement-located E5006 instead of escaping a
      // rank thread into std::terminate.
      SourceLoc loc = cur_ != nullptr ? cur_->loc : SourceLoc{};
      throw rt::RtError(statement_context() + e.what(), loc, "E5006");
    }
  }

 private:
  void declare(Frame& frame, const std::vector<lower::LVarDecl>& decls) {
    for (const lower::LVarDecl& d : decls) {
      if (d.is_matrix) {
        frame.mats.emplace(d.name, rt::fill_zeros(comm_, 0, 0, opts_.dist));
      } else {
        frame.scalars.emplace(d.name, 0.0);
      }
    }
  }

  double& scalar(Frame& f, const std::string& name) {
    auto it = f.scalars.find(name);
    if (it == f.scalars.end()) fail("undefined scalar '" + name + "'");
    return it->second;
  }
  DMat& mat(Frame& f, const std::string& name) {
    auto it = f.mats.find(name);
    if (it == f.mats.end()) fail("undefined matrix '" + name + "'");
    return it->second;
  }

  // -- expression trees -------------------------------------------------------

  double eval_scalar(const LExpr& e, Frame& f) {
    switch (e.kind) {
      case LExpr::Kind::Imm: return e.imm;
      case LExpr::Kind::ScalarVar: return scalar(f, e.var);
      case LExpr::Kind::MatVar:
        fail("matrix operand in scalar tree");
      case LExpr::Kind::Bin:
        return rt::ew_apply_bin(e.bop, eval_scalar(*e.a, f),
                                eval_scalar(*e.b, f));
      case LExpr::Kind::Un:
        return rt::ew_apply_un(e.uop, eval_scalar(*e.a, f));
      case LExpr::Kind::RowsOf:
        return static_cast<double>(mat(f, e.var).rows());
      case LExpr::Kind::ColsOf:
        return static_cast<double>(mat(f, e.var).cols());
      case LExpr::Kind::NumelOf:
        return static_cast<double>(mat(f, e.var).numel());
      case LExpr::Kind::RandScalar: {
        Lcg g(opts_.rand_seed);
        g.discard(rand_seq_);
        ++rand_seq_;
        return g.next();
      }
      case LExpr::Kind::RankId:
        return static_cast<double>(comm_.rank());
      case LExpr::Kind::NProcs:
        return static_cast<double>(comm_.size());
    }
    return 0.0;
  }

  /// Evaluates an element-wise tree at local element index `l`.
  double eval_elem(const LExpr& e, Frame& f, size_t l) {
    switch (e.kind) {
      case LExpr::Kind::MatVar: {
        const DMat& m = mat(f, e.var);
        if (l >= m.local_elements()) {
          fail("element-wise operand '" + e.var + "' misaligned");
        }
        return m.local()[l];
      }
      case LExpr::Kind::Bin:
        return rt::ew_apply_bin(e.bop, eval_elem(*e.a, f, l),
                                eval_elem(*e.b, f, l));
      case LExpr::Kind::Un:
        return rt::ew_apply_un(e.uop, eval_elem(*e.a, f, l));
      default:
        return eval_scalar(e, f);
    }
  }

  /// Shape of the element-wise result: taken from any matrix leaf.
  const DMat* tree_shape(const LExpr& e, Frame& f) {
    if (e.kind == LExpr::Kind::MatVar) return &mat(f, e.var);
    if (e.a) {
      if (const DMat* m = tree_shape(*e.a, f)) return m;
    }
    if (e.b) {
      if (const DMat* m = tree_shape(*e.b, f)) return m;
    }
    return nullptr;
  }

  // -- compiled kernels -----------------------------------------------------------

  /// Compiles (once) and caches the kernel for an Elemwise/ScalarAssign
  /// statement. LInstr nodes are pointer-stable (owned via unique_ptr), so
  /// the instruction address keys the cache.
  const Kernel& kernel_for(const LInstr& in) {
    auto it = kernels_.find(&in);
    if (it != kernels_.end()) return it->second;
    return kernels_.emplace(&in, compile_kernel(*in.tree)).first->second;
  }

  /// Evaluates a kernel's scalar slots once per statement into kscalar_vals_.
  void bind_scalar_slots(const Kernel& k, Frame& f) {
    kscalar_vals_.resize(k.scalars.size());
    for (size_t i = 0; i < k.scalars.size(); ++i) {
      kscalar_vals_[i] = eval_scalar(*k.scalars[i], f);
    }
  }

  Flow exec_elemwise_kernel(const LInstr& in, Frame& f, const Kernel& k) {
    // mats.front() is the pre-order first matrix leaf, i.e. the same shape
    // source tree_shape() would pick.
    const DMat& proto = mat(f, k.mats.front());
    size_t n = proto.local_elements();
    kmat_ptrs_.resize(k.mats.size());
    size_t bad_slot = k.mats.size();
    size_t bad_n = n;
    for (size_t i = 0; i < k.mats.size(); ++i) {
      const DMat& m = mat(f, k.mats[i]);
      if (m.local_elements() < bad_n) {  // strict <: earliest slot wins ties,
        bad_n = m.local_elements();      // matching the tree walker's order
        bad_slot = i;
      }
      kmat_ptrs_[i] = m.local().data();
    }
    if (n > 0 && bad_slot < k.mats.size()) {
      fail("element-wise operand '" + k.mats[bad_slot] + "' misaligned");
    }
    bind_scalar_slots(k, f);
    kstack_.resize(k.max_stack);
    DMat& dst = mat(f, in.dst);
    if (dst.aligned_with(proto)) {
      // In place: element l only reads index l of its operands before
      // writing index l, so dst may alias an operand buffer.
      auto ov = dst.local();
      k.run(ov.data(), kmat_ptrs_.data(), kscalar_vals_.data(),
            kstack_.data(), n);
      return Flow::Normal;
    }
    DMat out(comm_, proto.rows(), proto.cols(), proto.layout().dist());
    auto ov = out.local();
    k.run(ov.data(), kmat_ptrs_.data(), kscalar_vals_.data(), kstack_.data(),
          n);
    mat(f, in.dst) = std::move(out);
    return Flow::Normal;
  }

  double operand_scalar(const LOperand& o, Frame& f) {
    if (!o.scalar) fail("expected scalar operand");
    return eval_scalar(*o.scalar, f);
  }
  DMat& operand_mat(const LOperand& o, Frame& f) {
    if (!o.is_matrix) fail("expected matrix operand");
    return mat(f, o.mat);
  }

  static size_t as_index(double v, const char* what) {
    // The upper bound also rejects Inf: a non-finite index cast to size_t
    // is undefined behaviour before it is ever range-checked.
    if (!(v >= 0) || !(v < 9007199254740992.0) || std::floor(v) != v) {
      fail(std::string("invalid ") + what + " index");
    }
    return static_cast<size_t>(v);
  }
  static size_t as_dim(double v, const char* what) {
    // Negative, NaN, Inf, and 2^53-exceeding extents get the stable E5007
    // before any allocation is attempted (rt::checked_dim throws RtError).
    return rt::checked_dim(v, what);
  }

  // -- instructions ---------------------------------------------------------------

  Flow exec_body(const std::vector<lower::LInstrPtr>& body, Frame& f) {
    for (const lower::LInstrPtr& in : body) {
      Flow flow = exec_instr(*in, f);
      if (flow != Flow::Normal) return flow;
    }
    return Flow::Normal;
  }

  /// Top-level script walk with checkpoint boundaries. Statement index i is
  /// the program counter a checkpoint records: every rank runs the same
  /// top-level sequence, so "about to execute statement k" names one global
  /// quiescent cut. Boundaries inside loops/functions are never candidates
  /// (a nested frame would be live), which keeps captured state exactly one
  /// Frame + the RNG cursor + comm counters.
  void exec_script(const std::vector<lower::LInstrPtr>& body, Frame& f,
                   size_t start) {
    CheckpointCoordinator* co = opts_.checkpoint;
    uint32_t interval = co != nullptr ? co->interval() : 0;
    for (size_t i = start; i < body.size(); ++i) {
      if (exec_instr(*body[i], f) != Flow::Normal) return;
      size_t next = i + 1;
      if (interval > 0 && next < body.size() && next % interval == 0) {
        co->commit(comm_, next, capture_state(f));
      }
    }
  }

  // -- checkpoint capture/restore ---------------------------------------------

  /// Serializes this rank's complete resume state. Map entries are emitted
  /// in sorted name order so the byte stream is canonical (the hash-map
  /// iteration order is not part of the program state).
  std::vector<std::byte> capture_state(Frame& f) {
    snap::Writer w;
    w.u32(static_cast<uint32_t>(comm_.rank()));
    w.u64(rand_seq_);
    w.u64(comm_.ops());
    w.f64(comm_.vtime());
    std::vector<std::string> names;
    names.reserve(f.scalars.size());
    for (const auto& [name, v] : f.scalars) names.push_back(name);
    std::sort(names.begin(), names.end());
    w.u64(names.size());
    for (const std::string& name : names) {
      w.str(name);
      w.f64(f.scalars[name]);
    }
    names.clear();
    for (const auto& [name, m] : f.mats) names.push_back(name);
    std::sort(names.begin(), names.end());
    w.u64(names.size());
    for (const std::string& name : names) {
      w.str(name);
      f.mats[name].save_snapshot(w);
    }
    return w.take();
  }

  /// Rebuilds the frame, RNG cursor, and comm counters from this rank's
  /// checkpoint blob; returns the statement index to resume at. The file
  /// passed CRC validation before the ranks spawned, so failures here mean
  /// a blob/rank mismatch — surfaced as a coded E5005 runtime error.
  size_t restore_state(Frame& frame, const CheckpointCoordinator& co) {
    try {
      const std::vector<std::byte>* blob = co.rank_state(comm_.rank());
      if (blob == nullptr)
        throw snap::SnapshotError("checkpoint has no state for this rank");
      snap::Reader r(*blob);
      uint32_t rank = r.u32();
      if (rank != static_cast<uint32_t>(comm_.rank()))
        throw snap::SnapshotError("checkpoint blob belongs to another rank");
      rand_seq_ = r.u64();
      uint64_t ops = r.u64();
      double vtime = r.f64();
      // Continue the original run's op numbering and clock: op-indexed
      // fault schedules and vtime accounting stay aligned across resume.
      comm_.restore_stats(vtime, ops);
      uint64_t nscalars = r.u64();
      for (uint64_t i = 0; i < nscalars; ++i) {
        std::string name = r.str();
        frame.scalars[name] = r.f64();
      }
      uint64_t nmats = r.u64();
      for (uint64_t i = 0; i < nmats; ++i) {
        std::string name = r.str();
        frame.mats.insert_or_assign(name,
                                    DMat::load_snapshot(r, comm_.rank()));
      }
      return co.resume_statement();
    } catch (const snap::SnapshotError& e) {
      throw rt::RtError(std::string("checkpoint restore failed: ") + e.what(),
                        {}, "E5005");
    }
  }

  [[nodiscard]] std::string statement_context() const {
    if (cur_ == nullptr) return "";
    std::string ctx;
    if (cur_->loc.valid()) ctx += "line " + std::to_string(cur_->loc.line) + " ";
    ctx += "(" + std::string(lower::lop_name(cur_->op)) + "): ";
    return ctx;
  }

  Flow exec_instr(const LInstr& in, Frame& f) {
    cur_ = &in;
    // Session-scoped deadline / cancellation: communication ops already poll
    // it inside minimpi, but a compute-only loop (huge for-range of scalar
    // work) would otherwise run forever inside a daemon worker. Amortize the
    // clock read over a stride of statements.
    if ((opts_.spmd.has_deadline() || opts_.spmd.cancel != nullptr) &&
        ++deadline_stride_ % 64 == 0 && opts_.spmd.expired()) {
      throw rt::RtError(opts_.spmd.expiry_reason(), in.loc, "E5004");
    }
    switch (in.op) {
      case LOp::MatMul:
        mat(f, in.dst) = rt::matmul(comm_, operand_mat(in.args[0], f),
                                    operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::MatVec:
        mat(f, in.dst) = rt::matvec(comm_, operand_mat(in.args[0], f),
                                    operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::VecMat:
        mat(f, in.dst) = rt::vecmat(comm_, operand_mat(in.args[0], f),
                                    operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::OuterProd:
        mat(f, in.dst) = rt::outer(comm_, operand_mat(in.args[0], f),
                                   operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::TransposeOp:
        mat(f, in.dst) = rt::transpose(comm_, operand_mat(in.args[0], f));
        return Flow::Normal;
      case LOp::DotProd:
        scalar(f, in.sdst) = rt::dot(comm_, operand_mat(in.args[0], f),
                                     operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::Reduce: {
        const DMat& m = operand_mat(in.args[0], f);
        double v = 0;
        switch (in.red) {
          case RedKind::Sum: v = rt::reduce_sum(comm_, m); break;
          case RedKind::Mean: v = rt::reduce_mean(comm_, m); break;
          case RedKind::Min: v = rt::reduce_min(comm_, m); break;
          case RedKind::Max: v = rt::reduce_max(comm_, m); break;
          case RedKind::Prod: v = rt::reduce_prod(comm_, m); break;
        }
        scalar(f, in.sdst) = v;
        return Flow::Normal;
      }
      case LOp::Colwise: {
        const DMat& m = operand_mat(in.args[0], f);
        switch (in.red) {
          case RedKind::Sum:
            mat(f, in.dst) = rt::colwise_sum(comm_, m, false);
            break;
          case RedKind::Mean:
            mat(f, in.dst) = rt::colwise_sum(comm_, m, true);
            break;
          case RedKind::Min:
            mat(f, in.dst) = rt::colwise_minmax(comm_, m, true);
            break;
          case RedKind::Max:
            mat(f, in.dst) = rt::colwise_minmax(comm_, m, false);
            break;
          case RedKind::Prod:
            fail("column-wise prod is not supported");
        }
        return Flow::Normal;
      }
      case LOp::Norm:
        scalar(f, in.sdst) = rt::norm2(comm_, operand_mat(in.args[0], f));
        return Flow::Normal;
      case LOp::Trapz:
        if (in.args.size() == 2) {
          scalar(f, in.sdst) = rt::trapz_xy(comm_, operand_mat(in.args[0], f),
                                            operand_mat(in.args[1], f));
        } else {
          scalar(f, in.sdst) = rt::trapz(comm_, operand_mat(in.args[0], f));
        }
        return Flow::Normal;
      case LOp::GetElem: {
        const DMat& m = operand_mat(in.args[0], f);
        size_t r;
        size_t c;
        if (in.linear) {
          size_t k = as_index(operand_scalar(in.args[1], f), "linear");
          if (m.rows() == 1 || !m.is_vector()) {
            // Row vector (or 1x1): linear k maps to column k of row 0.
            if (m.rows() != 1) {
              // Row-major linear indexing into a full matrix (documented
              // deviation from MATLAB's column-major order).
              r = k / m.cols();
              c = k % m.cols();
            } else {
              r = 0;
              c = k;
            }
          } else {
            r = k;
            c = 0;
          }
        } else {
          r = as_index(operand_scalar(in.args[1], f), "row");
          c = as_index(operand_scalar(in.args[2], f), "column");
        }
        scalar(f, in.sdst) = rt::get_element(comm_, m, r, c);
        return Flow::Normal;
      }
      case LOp::SetElem: {
        DMat& m = mat(f, in.dst);
        size_t r;
        size_t c;
        double v;
        if (in.linear) {
          size_t k = as_index(operand_scalar(in.args[0], f), "linear");
          if (m.rows() == 1) {
            r = 0;
            c = k;
          } else if (m.cols() == 1) {
            r = k;
            c = 0;
          } else {
            r = k / m.cols();
            c = k % m.cols();
          }
          v = operand_scalar(in.args[1], f);
        } else {
          r = as_index(operand_scalar(in.args[0], f), "row");
          c = as_index(operand_scalar(in.args[1], f), "column");
          v = operand_scalar(in.args[2], f);
        }
        rt::set_element(comm_, m, r, c, v);
        return Flow::Normal;
      }
      case LOp::ExtractRowOp:
        mat(f, in.dst) = rt::extract_row(
            comm_, operand_mat(in.args[0], f),
            as_index(operand_scalar(in.args[1], f), "row"));
        return Flow::Normal;
      case LOp::ExtractColOp:
        mat(f, in.dst) = rt::extract_col(
            comm_, operand_mat(in.args[0], f),
            as_index(operand_scalar(in.args[1], f), "column"));
        return Flow::Normal;
      case LOp::AssignRowOp:
        rt::assign_row(comm_, mat(f, in.dst),
                       as_index(operand_scalar(in.args[0], f), "row"),
                       operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::AssignColOp:
        rt::assign_col(comm_, mat(f, in.dst),
                       as_index(operand_scalar(in.args[0], f), "column"),
                       operand_mat(in.args[1], f));
        return Flow::Normal;
      case LOp::SliceVec: {
        size_t lo = as_index(operand_scalar(in.args[1], f), "slice lo");
        size_t hi = as_index(operand_scalar(in.args[2], f), "slice hi");
        mat(f, in.dst) =
            rt::slice_vector(comm_, operand_mat(in.args[0], f), lo, hi);
        return Flow::Normal;
      }
      case LOp::AssignSliceOp: {
        size_t lo = as_index(operand_scalar(in.args[0], f), "slice lo");
        size_t hi = as_index(operand_scalar(in.args[1], f), "slice hi");
        rt::assign_slice(comm_, mat(f, in.dst), lo, hi,
                         operand_mat(in.args[2], f));
        return Flow::Normal;
      }
      case LOp::FillZeros:
      case LOp::FillOnes:
      case LOp::FillEye: {
        size_t r = as_dim(operand_scalar(in.args[0], f), "row");
        size_t c = as_dim(operand_scalar(in.args[1], f), "column");
        if (in.op == LOp::FillZeros) {
          mat(f, in.dst) = rt::fill_zeros(comm_, r, c, opts_.dist);
        } else if (in.op == LOp::FillOnes) {
          mat(f, in.dst) = rt::fill_ones(comm_, r, c, opts_.dist);
        } else {
          mat(f, in.dst) = rt::fill_eye(comm_, r, c, opts_.dist);
        }
        return Flow::Normal;
      }
      case LOp::FillRand: {
        size_t r = as_dim(operand_scalar(in.args[0], f), "row");
        size_t c = as_dim(operand_scalar(in.args[1], f), "column");
        mat(f, in.dst) =
            rt::fill_rand(comm_, r, c, opts_.rand_seed, rand_seq_, opts_.dist);
        rand_seq_ += static_cast<uint64_t>(r) * c;
        return Flow::Normal;
      }
      case LOp::FillRange: {
        double lo = operand_scalar(in.args[0], f);
        double step = operand_scalar(in.args[1], f);
        double hi = operand_scalar(in.args[2], f);
        mat(f, in.dst) = rt::fill_range(comm_, lo, step, hi, opts_.dist);
        return Flow::Normal;
      }
      case LOp::LoadFile:
        mat(f, in.dst) = rt::load_matrix(comm_, in.args[0].str, opts_.dist);
        return Flow::Normal;
      case LOp::FillLinspace: {
        double lo = operand_scalar(in.args[0], f);
        double hi = operand_scalar(in.args[1], f);
        size_t n = as_dim(operand_scalar(in.args[2], f), "count");
        mat(f, in.dst) = rt::fill_linspace(comm_, lo, hi, n, opts_.dist);
        return Flow::Normal;
      }
      case LOp::FromLiteral: {
        size_t rows = in.literal_rows.size();
        size_t cols = rows ? in.literal_rows[0].size() : 0;
        std::vector<double> data;
        data.reserve(rows * cols);
        for (const auto& row : in.literal_rows) {
          if (row.size() != cols) fail("ragged matrix literal");
          for (const lower::LExprPtr& e : row) {
            data.push_back(eval_scalar(*e, f));
          }
        }
        mat(f, in.dst) = rt::from_full(comm_, rows, cols, data, opts_.dist);
        return Flow::Normal;
      }
      case LOp::CopyMat:
        mat(f, in.dst) = operand_mat(in.args[0], f);
        return Flow::Normal;
      case LOp::Elemwise: {
        if (opts_.kernels) {
          const Kernel& k = kernel_for(in);
          if (k.ok && !k.mats.empty()) return exec_elemwise_kernel(in, f, k);
        }
        const DMat* shape = tree_shape(*in.tree, f);
        if (shape == nullptr) fail("element-wise loop without matrix operand");
        // Paper-style local loop: each processor updates its share.
        DMat out(comm_, shape->rows(), shape->cols(), shape->layout().dist());
        auto ov = out.local();
        for (size_t l = 0; l < ov.size(); ++l) {
          ov[l] = eval_elem(*in.tree, f, l);
        }
        mat(f, in.dst) = std::move(out);
        return Flow::Normal;
      }
      case LOp::ScalarAssign: {
        if (opts_.kernels) {
          const Kernel& k = kernel_for(in);
          if (k.ok && k.mats.empty()) {
            bind_scalar_slots(k, f);
            kstack_.resize(k.max_stack);
            scalar(f, in.sdst) = k.eval(nullptr, kscalar_vals_.data(),
                                        kstack_.data(), 0);
            return Flow::Normal;
          }
        }
        scalar(f, in.sdst) = eval_scalar(*in.tree, f);
        return Flow::Normal;
      }
      case LOp::CallFn:
        exec_call(in, f);
        return Flow::Normal;
      case LOp::Display: {
        const std::string& name = in.args[0].str;
        if (in.args[1].is_matrix) {
          std::string body = rt::format_dmat(comm_, operand_mat(in.args[1], f));
          if (comm_.rank() == 0) out_ << name << " =\n" << body;
        } else {
          double v = operand_scalar(in.args[1], f);
          if (comm_.rank() == 0) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6g", v);
            out_ << name << " =\n" << buf << '\n';
          }
        }
        return Flow::Normal;
      }
      case LOp::DispOp: {
        const LOperand& o = in.args[0];
        if (o.is_string) {
          if (comm_.rank() == 0) out_ << o.str << '\n';
        } else if (o.is_matrix) {
          std::string body = rt::format_dmat(comm_, operand_mat(o, f));
          if (comm_.rank() == 0) out_ << body;
        } else {
          double v = operand_scalar(o, f);
          if (comm_.rank() == 0) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6g", v);
            out_ << buf << '\n';
          }
        }
        return Flow::Normal;
      }
      case LOp::FprintfOp:
        exec_fprintf(in, f);
        return Flow::Normal;
      case LOp::ErrorOp:
        fail(in.args.empty() || !in.args[0].is_string ? "error"
                                                      : in.args[0].str);
      case LOp::ShapeGuard: {
        // Backs a graceful-inference assumption: the compiler assumed a
        // column-wise (matrix) reduction; abort with a coded error if the
        // argument is actually a vector at run time.
        const DMat& m = operand_mat(in.args[0], f);
        std::string what = in.args.size() > 1 && in.args[1].is_string
                               ? in.args[1].str
                               : "reduction";
        if ((m.rows() == 1 || m.cols() == 1) && m.numel() > 1) {
          throw rt::RtError(
              "shape guard failed: the argument of '" + what +
                  "' was assumed to be a matrix at compile time but is a " +
                  std::to_string(m.rows()) + "x" + std::to_string(m.cols()) +
                  " vector at run time (recompile with --strict-infer to "
                  "reject this program statically)",
              in.loc, "E5003");
        }
        return Flow::Normal;
      }
      case LOp::IfOp: {
        for (const lower::LIfArm& arm : in.arms) {
          if (!arm.cond || eval_scalar(*arm.cond, f) != 0.0) {
            return exec_body(arm.body, f);
          }
        }
        return Flow::Normal;
      }
      case LOp::WhileOp: {
        while (eval_scalar(*in.cond, f) != 0.0) {
          Flow flow = exec_body(in.body, f);
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) return flow;
        }
        return Flow::Normal;
      }
      case LOp::ForOp: {
        double lo = eval_scalar(*in.lo, f);
        double step = eval_scalar(*in.step, f);
        double hi = eval_scalar(*in.hi, f);
        if (step == 0.0) fail("for-loop step must be nonzero");
        double span = (hi - lo) / step;
        long n = span < 0 ? 0 : static_cast<long>(std::floor(span + 1e-10)) + 1;
        for (long k = 0; k < n; ++k) {
          f.scalars[in.loop_var] = lo + static_cast<double>(k) * step;
          Flow flow = exec_body(in.body, f);
          if (flow == Flow::Break) break;
          if (flow == Flow::Return) return flow;
        }
        return Flow::Normal;
      }
      case LOp::BreakOp: return Flow::Break;
      case LOp::ContinueOp: return Flow::Continue;
      case LOp::ReturnOp: return Flow::Return;
    }
    return Flow::Normal;
  }

  void exec_call(const LInstr& in, Frame& caller) {
    auto it = fns_.find(in.callee);
    if (it == fns_.end()) fail("unknown function instance '" + in.callee + "'");
    const LFunction& fn = *it->second;
    Frame frame;
    declare(frame, fn.params);
    declare(frame, fn.outs);
    declare(frame, fn.locals);
    for (size_t i = 0; i < in.args.size() && i < fn.params.size(); ++i) {
      if (fn.params[i].is_matrix) {
        frame.mats[fn.params[i].name] = operand_mat(in.args[i], caller);
      } else {
        frame.scalars[fn.params[i].name] = operand_scalar(in.args[i], caller);
      }
    }
    exec_body(fn.body, frame);
    for (size_t i = 0; i < in.call_dsts.size() && i < fn.outs.size(); ++i) {
      if (in.call_dsts[i].is_matrix) {
        mat(caller, in.call_dsts[i].name) = mat(frame, fn.outs[i].name);
      } else {
        scalar(caller, in.call_dsts[i].name) = scalar(frame, fn.outs[i].name);
      }
    }
  }

  void exec_fprintf(const LInstr& in, Frame& f) {
    if (in.args.empty() || !in.args[0].is_string) fail("fprintf needs a format");
    const std::string& fmt = in.args[0].str;
    // Flatten arguments into a replicated scalar stream (matrices gather).
    std::vector<double> data;
    for (size_t i = 1; i < in.args.size(); ++i) {
      if (in.args[i].is_matrix) {
        std::vector<double> full = rt::to_full(comm_, operand_mat(in.args[i], f));
        data.insert(data.end(), full.begin(), full.end());
      } else {
        data.push_back(operand_scalar(in.args[i], f));
      }
    }
    if (comm_.rank() != 0) return;
    fprintf_stream(out_, fmt, data);
  }

  const LProgram& prog_;
  mpi::Comm& comm_;
  std::ostream& out_;
  ExecOptions opts_;
  std::unordered_map<std::string, const LFunction*> fns_;
  uint64_t rand_seq_ = 0;
  uint64_t deadline_stride_ = 0;  // amortizes the per-statement deadline poll
  const LInstr* cur_ = nullptr;  // innermost statement, for error context
  // Compiled-kernel cache and reusable per-statement scratch (the "arena":
  // operand pointers, scalar slots, and the postfix value stack are
  // allocated once and reused across statements).
  std::unordered_map<const LInstr*, Kernel> kernels_;
  std::vector<const double*> kmat_ptrs_;
  std::vector<double> kscalar_vals_;
  std::vector<double> kstack_;
};

}  // namespace

void fprintf_stream(std::ostream& out, const std::string& fmt,
                    const std::vector<double>& data) {
  // Same formatting loop as the interpreter (shared output format).
  size_t next = 0;
  do {
    size_t consumed = 0;
    for (size_t i = 0; i < fmt.size(); ++i) {
      char c = fmt[i];
      if (c == '\\' && i + 1 < fmt.size()) {
        char e = fmt[++i];
        if (e == 'n') out << '\n';
        else if (e == 't') out << '\t';
        else out << e;
        continue;
      }
      if (c != '%') {
        out << c;
        continue;
      }
      if (i + 1 < fmt.size() && fmt[i + 1] == '%') {
        out << '%';
        ++i;
        continue;
      }
      std::string spec = "%";
      ++i;
      while (i < fmt.size() && std::string("-+ 0123456789.*").find(fmt[i]) !=
                                   std::string::npos) {
        spec += fmt[i++];
      }
      if (i >= fmt.size()) break;
      char conv = fmt[i];
      spec += conv;
      double v = next < data.size() ? data[next] : 0.0;
      if (next < data.size()) {
        ++next;
        ++consumed;
      }
      char buf[128];
      if (conv == 'd' || conv == 'i') {
        std::string s2 = spec.substr(0, spec.size() - 1) + "lld";
        std::snprintf(buf, sizeof buf, s2.c_str(), static_cast<long long>(v));
      } else {
        std::snprintf(buf, sizeof buf, spec.c_str(), v);
      }
      out << buf;
    }
    if (consumed == 0) break;
  } while (next < data.size());
}

void execute_lir(const LProgram& prog, mpi::Comm& comm, std::ostream& out,
                 const ExecOptions& opts) {
  if (opts.backend != ExecBackend::Tree) {
    // Auto resolves to the VM: it is the default tier, and every caller
    // that wants the tree reference (-O0, differential legs) says so.
    const vm::BcModule* mod = opts.bytecode;
    vm::BcModule local;
    if (mod == nullptr) {
      local = vm::compile_bytecode(prog);
      mod = &local;
    }
    vm::execute_bytecode(*mod, comm, out, opts);
    return;
  }
  Executor ex(prog, comm, out, opts);
  ex.run();
}

}  // namespace otter::driver
